package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != TimeZero {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(1000, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order violated at index %d: got %d", i, v)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(777, func() {
		if e.Now() != 777 {
			t.Errorf("Now() inside handler = %v, want 777", e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 777 {
		t.Fatalf("Now() after run = %v, want 777", e.Now())
	}
}

func TestSchedulingIntoThePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunUntilStopsAtHorizonAndAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{100, 200, 300} {
		at := at
		e.Schedule(at, func() { ran = append(ran, at) })
	}
	if err := e.RunUntil(250); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events before horizon, want 2", len(ran))
	}
	if e.Now() != 250 {
		t.Fatalf("clock = %v after RunUntil(250), want 250", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran %d events total, want 3", len(ran))
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunUntil(1e9); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != 1e9 {
		t.Fatalf("clock = %v, want 1e9", e.Now())
	}
}

func TestCancelSkipsEvent(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(100, func() { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if got := e.Stats().Processed; got != 0 {
		t.Fatalf("Processed = %d, want 0", got)
	}
}

func TestCancelZeroEventRefIsNoop(t *testing.T) {
	var ev EventRef
	ev.Cancel() // must not panic
	if ev.Cancelled() {
		t.Fatal("zero EventRef reports cancelled")
	}
	if ev.Pending() {
		t.Fatal("zero EventRef reports pending")
	}
	if ev.At() != TimeNever {
		t.Fatalf("zero EventRef At = %v, want never", ev.At())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	first := e.Schedule(100, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The fired event's storage is recycled; a later event may occupy it.
	second := e.Schedule(200, func() {})
	first.Cancel() // stale handle: must not cancel the new occupant
	if second.Cancelled() {
		t.Fatal("stale Cancel hit a recycled event")
	}
	ran := false
	third := e.Schedule(300, func() { ran = true })
	_ = third
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("event after stale cancel did not run")
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("processed %d events before stop, want 3", count)
	}
	// The run can be resumed.
	if err := e.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("processed %d events total, want 10", count)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var fired Time = TimeNever
	e.Schedule(1000, func() {
		e.After(500*time.Nanosecond, func() { fired = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1500 {
		t.Fatalf("After fired at %v, want 1500", fired)
	}
}

func TestDeterministicRandomSource(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced diverging random streams")
		}
	}
}

func TestEngineStatsCounters(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	ev := e.Schedule(2, func() {})
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := e.Stats()
	if s.Scheduled != 2 || s.Processed != 1 || s.Pending != 0 {
		t.Fatalf("Stats = %+v, want {2 1 0}", s)
	}
}

// Property: for any set of (time, id) pairs, the engine replays them in
// stable sorted order (time ascending, insertion order for ties).
func TestPropertyEventOrdering(t *testing.T) {
	type stamped struct {
		at  Time
		idx int
	}
	f := func(raw []uint32) bool {
		e := NewEngine(1)
		want := make([]stamped, len(raw))
		var got []stamped
		for i, r := range raw {
			at := Time(r % 1000) // force plenty of ties
			want[i] = stamped{at: at, idx: i}
			i := i
			e.Schedule(at, func() { got = append(got, stamped{at: at, idx: i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any interleaving of pushes and pops, every pop returns
// exactly what a reference model (a sorted list keyed by (At, seq)) would.
func TestPropertyHeapMatchesReferenceModel(t *testing.T) {
	type key struct {
		at  Time
		seq uint64
	}
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h eventHeap
		var ref []key
		var seq uint64
		for _, op := range ops {
			if op%3 != 0 || h.Len() == 0 {
				k := key{at: Time(rng.Intn(64)), seq: seq}
				seq++
				h.push(&Event{at: k.at, seq: k.seq})
				ref = append(ref, k)
				continue
			}
			ev := h.pop()
			best := 0
			for i, k := range ref {
				if k.at < ref[best].at || (k.at == ref[best].at && k.seq < ref[best].seq) {
					best = i
				}
			}
			if ev.at != ref[best].at || ev.seq != ref[best].seq {
				return false
			}
			ref = append(ref[:best], ref[best+1:]...)
		}
		if h.Len() != len(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetSupersedesDeadline(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(100 * time.Nanosecond)
	tm.Reset(500 * time.Nanosecond)
	if err := e.RunUntil(200); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fires != 0 {
		t.Fatal("superseded deadline fired")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(100 * time.Nanosecond)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if got := tm.Deadline(); got != 100 {
		t.Fatalf("Deadline = %v, want 100", got)
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	if got := tm.Deadline(); got != TimeNever {
		t.Fatalf("Deadline after Stop = %v, want never", got)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fires != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetAt(t *testing.T) {
	e := NewEngine(1)
	var firedAt Time = TimeNever
	tm := NewTimer(e, func() { firedAt = e.Now() })
	tm.ResetAt(4321)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 4321 {
		t.Fatalf("timer fired at %v, want 4321", firedAt)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := FromDuration(3 * time.Microsecond)
	if tt != 3000 {
		t.Fatalf("FromDuration = %v, want 3000", tt)
	}
	if tt.Duration() != 3*time.Microsecond {
		t.Fatalf("Duration = %v", tt.Duration())
	}
	if tt.Seconds() != 3e-6 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if !Time(1).Before(2) || !Time(2).After(1) {
		t.Fatal("Before/After comparison broken")
	}
	if got := Time(1500).String(); got != "1.500µs" {
		t.Fatalf("String = %q", got)
	}
	if got := TimeNever.String(); got != "never" {
		t.Fatalf("TimeNever.String = %q", got)
	}
}
