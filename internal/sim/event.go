package sim

// Event is a unit of scheduled work. Events are compared first by their
// firing time and then by their sequence number, so two events scheduled
// for the same instant always run in the order they were scheduled. This
// deterministic tie-break is what makes runs reproducible.
type Event struct {
	// At is the virtual instant the event fires.
	At Time
	// Run executes the event. It runs exactly once, at time At, unless
	// the event was cancelled first.
	Run func()

	seq       uint64
	heapIndex int
	cancelled bool
}

// Cancel prevents a pending event from running. Cancelling an event that
// has already fired (or was already cancelled) is a no-op. Cancellation is
// lazy: the event stays in the queue but its Run hook is skipped when it
// surfaces, which keeps cancellation O(1).
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// eventHeap is a binary min-heap of events ordered by (At, seq). It
// implements the parts of container/heap we need by hand; the hand-rolled
// version avoids interface boxing on the hot path (tens of millions of
// events per experiment sweep).
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIndex = i
	h.items[j].heapIndex = j
}

func (h *eventHeap) push(e *Event) {
	e.heapIndex = len(h.items)
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) pop() *Event {
	n := len(h.items)
	h.swap(0, n-1)
	e := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	e.heapIndex = -1
	return e
}

func (h *eventHeap) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
