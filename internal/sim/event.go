package sim

// Event is a unit of scheduled work, owned and recycled by its Engine.
// Events are compared by firing time, then by the virtual instant they
// were scheduled, then by source key, then by sequence number, so two
// events scheduled for the same instant always run in a deterministic
// order. This tie-break is what makes runs reproducible.
//
// For a single engine scheduling only unkeyed events the scheduling
// instant and source key are redundant — they order exactly like
// (at, seq). The extra key components matter for sharded execution:
// a cross-domain delivery carries the virtual instant its sender shipped
// it plus the sender's stable (srcKey, srcSeq) identity, so same-instant
// ties between deliveries from different domains resolve identically
// whether the run is serial or partitioned across any number of shards.
// A serial tie-break by global sequence number alone could not be
// reproduced by a partitioned run: the global interleaving of two
// domains' scheduling calls depends on event genealogy arbitrarily far
// back, which no bounded message payload can carry.
//
// Model code never touches an Event directly: Schedule and After return
// an EventRef, a generation-checked handle that stays safe to use after
// the event has fired and its storage has been recycled for a later
// event.
type Event struct {
	// at is the virtual instant the event fires.
	at Time
	// schedAt is the virtual instant the event was scheduled (for
	// injected cross-shard deliveries: the sender's ship instant).
	schedAt Time
	// srcKey identifies the scheduling source for keyed events (a stable
	// topology domain index ≥ 0); unkeyed events carry unkeyedSrc, which
	// sorts before every domain so local events win exact (at, schedAt)
	// ties against deliveries — the order a partitioned run necessarily
	// produces, since deliveries are injected after local scheduling.
	srcKey int
	// srcSeq orders keyed events from the same source (a per-domain
	// monotone counter); zero for unkeyed events.
	srcSeq uint64
	// Exactly one of run/runArg is set. runArg carries its argument out
	// of band so hot paths can schedule without allocating a closure.
	run    func()
	runArg func(any)
	arg    any

	seq       uint64
	heapIndex int
	cancelled bool
	// gen increments every time the storage is recycled; EventRef
	// handles carry the generation they were issued for, which turns
	// use-after-recycle into a no-op instead of corrupting an unrelated
	// event.
	gen uint64
}

// EventRef is a handle to a scheduled event. The zero value is an
// unarmed reference: Cancel on it is a no-op and Pending reports false.
// A reference stays valid (as a no-op) after its event fires: the engine
// recycles event storage, and the generation check distinguishes the
// original event from any later occupant.
type EventRef struct {
	engine *Engine
	ev     *Event
	gen    uint64
}

// Pending reports whether the event is still queued and uncancelled.
//
//dtlint:hotpath
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.cancelled
}

// At returns the firing instant of a pending event, or TimeNever once
// the event has fired or been cancelled.
//
//dtlint:hotpath
func (r EventRef) At() Time {
	if !r.Pending() {
		return TimeNever
	}
	return r.ev.at
}

// Cancel prevents a pending event from running. Cancelling an event that
// has already fired (or was already cancelled) is a no-op. Cancellation
// is lazy — the event stays queued and is skipped (and recycled) when it
// surfaces — but the engine compacts the queue when cancelled events
// outnumber live ones, so a cancel-heavy workload cannot grow the queue
// without bound.
//
//dtlint:hotpath
func (r EventRef) Cancel() {
	if r.ev == nil || r.ev.gen != r.gen || r.ev.cancelled {
		return
	}
	r.ev.cancelled = true
	r.engine.noteCancelled()
}

// Cancelled reports whether Cancel has been called on the event it
// references and the event has not yet been recycled.
//
//dtlint:hotpath
func (r EventRef) Cancelled() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.cancelled
}

// eventHeap is a binary min-heap of events ordered by
// (at, schedAt, srcKey, srcSeq, seq).
// It implements the parts of container/heap we need by hand; the
// hand-rolled version avoids interface boxing on the hot path (tens of
// millions of events per experiment sweep).
type eventHeap struct {
	items []*Event
}

//dtlint:hotpath
func (h *eventHeap) Len() int { return len(h.items) }

// unkeyedSrc is the srcKey of events scheduled without a source
// identity. It sorts before every topology domain (all ≥ 0).
const unkeyedSrc = -1

//dtlint:hotpath
func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.srcKey != b.srcKey {
		return a.srcKey < b.srcKey
	}
	if a.srcSeq != b.srcSeq {
		return a.srcSeq < b.srcSeq
	}
	return a.seq < b.seq
}

//dtlint:hotpath
func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIndex = i
	h.items[j].heapIndex = j
}

//dtlint:hotpath
func (h *eventHeap) push(e *Event) {
	e.heapIndex = len(h.items)
	//dtlint:allow hotalloc: backing array starts at initialHeapCap and is retained; growth is amortized warm-up
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

//dtlint:hotpath
func (h *eventHeap) pop() *Event {
	n := len(h.items)
	h.swap(0, n-1)
	e := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	e.heapIndex = -1
	return e
}

//dtlint:hotpath
func (h *eventHeap) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

//dtlint:hotpath
func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

//dtlint:hotpath
func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// reheapify restores the heap property over the whole backing slice in
// O(n), used after compaction filters out cancelled events.
//
//dtlint:hotpath
func (h *eventHeap) reheapify() {
	for i := range h.items {
		h.items[i].heapIndex = i
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
