package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// This file is the sharded execution layer: a conservative
// parallel-discrete-event coordinator over the single-threaded Engine.
//
// The topology is cut into shard domains, each owning one Engine (event
// wheel, free list, RNG stream). Shards run concurrently inside epoch
// windows bounded by the lookahead L — the minimum cross-shard link
// propagation delay. The window arithmetic is the classic null-message
// argument collapsed to a barrier: events executed in [w·L, (w+1)·L) can
// only produce cross-shard effects at ≥ w·L + L = (w+1)·L, so every
// message generated inside a window is injectable at the barrier that
// closes it, before any shard has advanced past the message's firing
// time. Messages are globally sorted by (At, SchedAt, SrcKey, SrcSeq)
// before injection so the destination engines assign sequence numbers in
// a shard-count-invariant order, and each injected event carries its
// sender-side scheduling instant into the (at, schedAt, seq) ordering
// key — reproducing the interleaving a serial run would have produced.
//
// Everything below the barrier (model code inside event handlers) stays
// single-threaded per shard and is untouched; the goroutines and channels
// live only in this explicitly marked synchronization layer.

// errLookahead reports a coordinator misconfiguration.
var errLookahead = errors.New("sim: sharded engine requires a positive lookahead")

// tick is the virtual clock's resolution, used by the epoch loop to turn
// the engine's inclusive horizon into the half-open windows the strict
// runner consumes.
const tick Time = 1

// Message is one cross-shard delivery, shipped into an Outbox during an
// epoch window and injected into the destination shard's event wheel at
// the closing barrier.
type Message struct {
	// At is the virtual instant the delivery fires at the destination.
	At Time
	// SchedAt is the virtual instant the sender shipped it; it becomes
	// the injected event's scheduling instant in the destination's
	// (at, schedAt, seq) ordering key.
	SchedAt Time
	// SrcKey is the stable global index of the sending domain; together
	// with SrcSeq it makes the barrier's global sort order total and
	// independent of how domains are grouped into shards.
	SrcKey int
	// SrcSeq is the sender's monotone per-domain message counter.
	SrcSeq uint64
	// Dst is the destination shard index.
	Dst int
	// Fn runs with Arg on the destination shard at At.
	Fn func(any)
	// Arg is the delivery payload.
	Arg any
}

// Outbox buffers one shard's outgoing cross-shard messages for the
// current epoch window. Each shard appends only to its own outbox on its
// own worker goroutine; the coordinator drains all outboxes between
// windows.
type Outbox struct {
	msgs []Message
}

// Ship appends one message; called from model code on the owning shard's
// goroutine.
//
//dtlint:hotpath
func (o *Outbox) Ship(m Message) {
	//dtlint:allow hotalloc: the outbox retains capacity across barriers; growth is amortized warm-up
	o.msgs = append(o.msgs, m)
}

// barrierTask is coordinator-context work pinned to a virtual instant:
// periodic samplers that must read state across shards. A task runs at
// the barrier once every shard has processed all events before its
// instant, which is exactly the state a serial run would present to a
// sampler tick (up to same-instant ties with long-scheduled events).
// Tasks are ordered by (at, schedAt, seq), mirroring the event key, so
// same-instant task chains fire in their serial order.
type barrierTask struct {
	at      Time
	schedAt Time
	seq     uint64
	fn      func(Time)
}

// ShardedEngine runs several Engines in lockstep epochs under a
// conservative lookahead. Construct with NewShardedEngine, wire domains
// to shards (see netsim.Network.Partition), set the lookahead, and drive
// it with RunUntil/RunFor exactly like a plain Engine.
type ShardedEngine struct {
	shards    []*Engine
	outboxes  []Outbox
	lookahead Time
	now       Time

	tasks   []barrierTask // min-heap ordered by (at, schedAt, seq)
	taskSeq uint64
	hooks   []func()

	// inbox is the coordinator's merge-sort scratch buffer, reused
	// across barriers.
	inbox []Message

	stopped bool
}

// splitmix64 is the SplitMix64 finalizer; it turns (seed, shard) into a
// well-distributed, stable per-shard seed.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ShardSeed derives the RNG seed of shard i from the run seed. Shard 0
// uses the run seed itself so a one-shard topology reproduces the serial
// engine's random stream bit for bit; higher shards get independent
// SplitMix64-derived streams that depend only on (seed, i) — never on
// the shard count — so any grouping of domains draws the same numbers.
func ShardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	return int64(splitmix64(uint64(seed) + uint64(i)))
}

// NewShardedEngine creates n engines seeded per ShardSeed.
func NewShardedEngine(seed int64, n int) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least one shard, got %d", n))
	}
	se := &ShardedEngine{
		shards:   make([]*Engine, n),
		outboxes: make([]Outbox, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine(ShardSeed(seed, i))
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns the i-th shard's engine. Model code owned by a shard
// schedules on it exactly as in a serial run.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Outbox returns the i-th shard's outbox for cross-shard shipping.
func (se *ShardedEngine) Outbox(i int) *Outbox { return &se.outboxes[i] }

// SetLookahead sets the epoch window length: the minimum cross-shard
// link propagation delay. It must be positive before the first Run.
func (se *ShardedEngine) SetLookahead(d Time) { se.lookahead = d }

// Lookahead returns the configured epoch window length.
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// Now returns the coordinator's clock: the instant of the task being
// executed, or the last completed horizon. Model code inside shards must
// use its own engine's Now.
func (se *ShardedEngine) Now() Time { return se.now }

// Stop makes the run loop return ErrStopped at the next barrier.
func (se *ShardedEngine) Stop() { se.stopped = true }

// ScheduleBarrier enqueues fn to run in coordinator context at the
// barrier that reaches instant at: after every shard has processed all
// events strictly before at, and before any processes an event at or
// after it. This is the sharded home for periodic samplers that read
// state across shards (mean α, byte counters); their reads are ordered
// by the barrier's happens-before edges, so no locks are needed.
func (se *ShardedEngine) ScheduleBarrier(at Time, fn func(Time)) {
	if at < se.now {
		panic(fmt.Sprintf("sim: barrier task into the past: now=%v at=%v", se.now, at))
	}
	se.tasks = append(se.tasks, barrierTask{at: at, schedAt: se.now, seq: se.taskSeq, fn: fn})
	se.taskSeq++
	se.taskUp(len(se.tasks) - 1)
}

// AddBarrierHook registers fn to run in coordinator context after every
// barrier exchange (shard free-list rebalancing, conservation checks).
func (se *ShardedEngine) AddBarrierHook(fn func()) { se.hooks = append(se.hooks, fn) }

func (se *ShardedEngine) taskLess(i, j int) bool {
	a, b := se.tasks[i], se.tasks[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

func (se *ShardedEngine) taskUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !se.taskLess(i, parent) {
			break
		}
		se.tasks[i], se.tasks[parent] = se.tasks[parent], se.tasks[i]
		i = parent
	}
}

func (se *ShardedEngine) popTask() barrierTask {
	t := se.tasks[0]
	n := len(se.tasks) - 1
	se.tasks[0] = se.tasks[n]
	se.tasks[n] = barrierTask{}
	se.tasks = se.tasks[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && se.taskLess(right, left) {
			smallest = right
		}
		if !se.taskLess(smallest, i) {
			break
		}
		se.tasks[i], se.tasks[smallest] = se.tasks[smallest], se.tasks[i]
		i = smallest
	}
	return t
}

// nextEventTime returns the earliest pending event instant across all
// shards, or TimeNever.
func (se *ShardedEngine) nextEventTime() Time {
	next := TimeNever
	for _, sh := range se.shards {
		if t := sh.NextEventTime(); t != TimeNever && (next == TimeNever || t < next) {
			next = t
		}
	}
	return next
}

// msgsByKey orders barrier messages by (At, SchedAt, SrcKey, SrcSeq):
// firing time, sender-side scheduling instant, then a total sender order
// that depends only on the stable domain numbering — never on the
// domain-to-shard grouping — so the injection order, and with it the
// destination sequence numbering, is identical for every shard count.
type msgsByKey []Message

func (m msgsByKey) Len() int      { return len(m) }
func (m msgsByKey) Swap(i, j int) { m[i], m[j] = m[j], m[i] }
func (m msgsByKey) Less(i, j int) bool {
	a, b := m[i], m[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.SchedAt != b.SchedAt {
		return a.SchedAt < b.SchedAt
	}
	if a.SrcKey != b.SrcKey {
		return a.SrcKey < b.SrcKey
	}
	return a.SrcSeq < b.SrcSeq
}

// exchange drains every outbox, sorts the union, and injects each
// message into its destination shard. Coordinator context only.
func (se *ShardedEngine) exchange() {
	se.inbox = se.inbox[:0]
	for i := range se.outboxes {
		o := &se.outboxes[i]
		se.inbox = append(se.inbox, o.msgs...)
		for j := range o.msgs {
			o.msgs[j] = Message{}
		}
		o.msgs = o.msgs[:0]
	}
	if len(se.inbox) == 0 {
		return
	}
	sort.Sort(msgsByKey(se.inbox))
	for i := range se.inbox {
		m := &se.inbox[i]
		se.shards[m.Dst].InjectSrcArg(m.At, m.SchedAt, m.SrcKey, m.SrcSeq, m.Fn, m.Arg)
		se.inbox[i] = Message{}
	}
}

// RunUntil executes all shards up to and including horizon end. A single
// shard degenerates to the serial engine when no barrier tasks are
// pending; otherwise the epoch loop below runs, interleaving parallel
// event windows with coordinator-context barrier work.
func (se *ShardedEngine) RunUntil(end Time) error {
	if len(se.shards) == 1 && len(se.tasks) == 0 {
		err := se.shards[0].RunUntil(end)
		if se.now < end {
			se.now = end
		}
		return err
	}
	if se.lookahead <= 0 {
		return errLookahead
	}
	se.stopped = false

	workers := se.startWorkers()
	defer workers.close()

	L := se.lookahead
	for {
		if se.stopped {
			return ErrStopped
		}
		tev := se.nextEventTime()
		ttask := TimeNever
		if len(se.tasks) > 0 {
			ttask = se.tasks[0].at
		}
		evDue := tev != TimeNever && tev <= end
		taskDue := ttask != TimeNever && ttask <= end
		if !evDue && !taskDue {
			break
		}
		// A barrier task due no later than the earliest event runs first:
		// every shard has already processed all events before its
		// instant, which is the serial sampler's view. (A same-instant
		// event scheduled even earlier in virtual time would precede the
		// tick serially; periodic samplers are scheduled one period
		// ahead, so in practice only RTO-scale timers could land there.)
		if taskDue && (!evDue || ttask <= tev) {
			t := se.popTask()
			se.now = t.at
			t.fn(t.at)
			continue
		}
		// Dispatch the epoch window [tev, h): up to the grid boundary
		// after tev, clipped to the next task instant and the horizon.
		// Every cross-shard message shipped at an instant s inside the
		// window fires at s + delay ≥ w·L + L ≥ h, so it is injectable at
		// the closing barrier before any shard reaches it.
		w := tev / L
		h := (w + tick) * L
		if taskDue && ttask < h {
			h = ttask
		}
		if end+tick < h {
			h = end + tick
		}
		if err := workers.dispatch(h); err != nil {
			return err
		}
		se.now = h - tick
		se.exchange()
		for _, hook := range se.hooks {
			hook()
		}
	}
	// Horizon reached: advance every shard's clock to end (events past
	// end stay queued, exactly like the serial engine's RunUntil).
	for _, sh := range se.shards {
		if err := sh.RunUntil(end); err != nil {
			return err
		}
	}
	se.now = end
	return nil
}

// RunFor advances the sharded simulation by d virtual time.
func (se *ShardedEngine) RunFor(d time.Duration) error {
	return se.RunUntil(se.now.Add(d))
}

// Stats merges the shard engines' counters: totals are summed and
// MaxPending is the maximum over shards (per-shard high-water marks do
// not align in time, so their sum would overstate the global mark).
func (se *ShardedEngine) Stats() EngineStats {
	var total EngineStats
	for _, sh := range se.shards {
		s := sh.Stats()
		total.Scheduled += s.Scheduled
		total.Processed += s.Processed
		total.Pending += s.Pending
		total.Cancelled += s.Cancelled
		total.Compactions += s.Compactions
		total.FreeHits += s.FreeHits
		total.FreeMisses += s.FreeMisses
		if s.MaxPending > total.MaxPending {
			total.MaxPending = s.MaxPending
		}
	}
	return total
}

// shardWorkers is the pool of per-shard goroutines alive for one
// RunUntil call. Shard 0 always runs inline on the coordinator
// goroutine — it is the designated home of the run's root RNG consumers,
// and with n shards only n−1 extra goroutines are needed.
type shardWorkers struct {
	se   *ShardedEngine
	work []chan Time
	done chan error
}

// startWorkers launches one goroutine per shard beyond the first. The
// channels are the only synchronization in the whole scheme: a dispatch
// send happens-after the coordinator's injections, and the join receive
// happens-after the shard's window, so barrier-context reads and writes
// of shard state need no locks.
//
//dtlint:shardboundary coordinator fan-out: one worker goroutine per shard beyond the inline shard 0
func (se *ShardedEngine) startWorkers() *shardWorkers {
	ws := &shardWorkers{
		se:   se,
		work: make([]chan Time, len(se.shards)),
		done: make(chan error, len(se.shards)),
	}
	for i := 1; i < len(se.shards); i++ {
		ch := make(chan Time)
		ws.work[i] = ch
		sh := se.shards[i]
		go func() {
			for h := range ch {
				ws.done <- sh.RunStrictUntil(h)
			}
		}()
	}
	return ws
}

// dispatch runs every shard with work before h up to (but excluding) h
// and joins them all before returning.
//
//dtlint:shardboundary epoch fan-out/join: sends bound the window, receives publish shard state to the barrier
func (ws *shardWorkers) dispatch(h Time) error {
	launched := 0
	for i := 1; i < len(ws.se.shards); i++ {
		if t := ws.se.shards[i].NextEventTime(); t != TimeNever && t < h {
			ws.work[i] <- h
			launched++
		}
	}
	var err error
	if t := ws.se.shards[0].NextEventTime(); t != TimeNever && t < h {
		err = ws.se.shards[0].RunStrictUntil(h)
	}
	for ; launched > 0; launched-- {
		if e := <-ws.done; e != nil && err == nil {
			err = e
		}
	}
	return err
}

// close terminates the worker goroutines.
//
//dtlint:shardboundary worker teardown closes the dispatch channels
func (ws *shardWorkers) close() {
	for _, ch := range ws.work {
		if ch != nil {
			close(ch)
		}
	}
}
