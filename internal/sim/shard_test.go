package sim

import (
	"testing"
	"time"
)

func TestShardSeedStreams(t *testing.T) {
	const seed = int64(42)
	if got := ShardSeed(seed, 0); got != seed {
		t.Fatalf("shard 0 must reuse the run seed (serial stream): got %d want %d", got, seed)
	}
	seen := map[int64]int{seed: 0}
	for i := 1; i < 64; i++ {
		s := ShardSeed(seed, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	// The stream of shard i is a function of (seed, i) only — never of
	// the shard count — so regrouping domains cannot move a stream.
	if ShardSeed(seed, 3) != ShardSeed(seed, 3) {
		t.Fatal("ShardSeed is not a pure function")
	}
}

// TestInjectKeyedHeapPosition is the regression test for a heap-ordering
// bug: InjectArg once stamped the explicit scheduling instant after the
// event had already been pushed (and sifted) under the engine clock, so a
// same-instant tie between an injected delivery and a native event
// resolved by the corrupted position instead of the (at, schedAt) key.
func TestInjectKeyedHeapPosition(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(100, func() {
		// At now=100, schedule a native event for t=200 (schedAt=100),
		// then inject one for the same instant with an earlier schedAt.
		// The injected event must run first despite being enqueued last.
		e.Schedule(200, func() { order = append(order, "native") })
		e.InjectArg(200, 50, func(any) { order = append(order, "injected") }, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "injected" || order[1] != "native" {
		t.Fatalf("tie resolved in wrong order: %v", order)
	}
}

// TestSourceKeyedTieOrder pins the shard-invariant tie-break: events
// firing at the same (at, schedAt) run in (srcKey, srcSeq) order, with
// unkeyed events ahead of every keyed one, regardless of the order the
// scheduling calls were made in.
func TestSourceKeyedTieOrder(t *testing.T) {
	e := NewEngine(1)
	var order []string
	rec := func(name string) func(any) {
		return func(any) { order = append(order, name) }
	}
	e.ScheduleSrcArg(300, 7, 0, rec("d7s0"), nil)
	e.ScheduleSrcArg(300, 2, 1, rec("d2s1"), nil)
	e.ScheduleSrcArg(300, 2, 0, rec("d2s0"), nil)
	e.ScheduleArg(300, rec("local"), nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"local", "d2s0", "d2s1", "d7s0"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie order %v, want %v", order, want)
		}
	}
}

func TestScheduleSrcArgRejectsNegativeKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative source key accepted")
		}
	}()
	NewEngine(1).ScheduleSrcArg(1, -1, 0, func(any) {}, nil)
}

// TestExchangeInjectionOrder ships same-instant messages from several
// outboxes and checks they execute in (At, SchedAt, SrcKey, SrcSeq)
// order at the destination shard, independent of shipping order.
func TestExchangeInjectionOrder(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(100)
	var order []string
	rec := func(name string) func(any) {
		return func(any) { order = append(order, name) }
	}
	// Shard 1 ships three deliveries to shard 0, all firing at t=150
	// with ship instant 50, shipped out of key order.
	se.Shard(1).Schedule(50, func() {
		out := se.Outbox(1)
		out.Ship(Message{At: 150, SchedAt: 50, SrcKey: 5, SrcSeq: 0, Dst: 0, Fn: rec("d5s0")})
		out.Ship(Message{At: 150, SchedAt: 50, SrcKey: 3, SrcSeq: 1, Dst: 0, Fn: rec("d3s1")})
		out.Ship(Message{At: 150, SchedAt: 50, SrcKey: 3, SrcSeq: 0, Dst: 0, Fn: rec("d3s0")})
	})
	if err := se.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	want := []string{"d3s0", "d3s1", "d5s0"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("injection order %v, want %v", order, want)
		}
	}
}

// TestShardedRunMatchesSerialPingPong runs the same two-domain ping-pong
// on one and two shards and requires identical completion counts and
// final clocks — the sim-layer miniature of the system-level digest
// tests in internal/core.
func TestShardedRunMatchesSerialPingPong(t *testing.T) {
	run := func(shards int) (uint64, Time) {
		se := NewShardedEngine(7, shards)
		se.SetLookahead(25)
		// A single shard with no barrier work short-circuits to the plain
		// engine and never drains outboxes; pin the epoch loop on.
		se.ScheduleBarrier(0, func(Time) {})
		a, b := se.Shard(0), se.Shard(shards-1)
		outA, outB := se.Outbox(0), se.Outbox(shards-1)
		var seqA, seqB uint64
		count := 0
		var pingB, pongA func(any)
		pingB = func(any) {
			count++
			now := b.Now()
			outB.Ship(Message{At: now + 25, SchedAt: now, SrcKey: 1, SrcSeq: seqB, Dst: 0, Fn: pongA})
			seqB++
		}
		pongA = func(any) {
			now := a.Now()
			outA.Ship(Message{At: now + 25, SchedAt: now, SrcKey: 0, SrcSeq: seqA, Dst: shards - 1, Fn: pingB})
			seqA++
		}
		a.Schedule(0, func() {
			now := a.Now()
			outA.Ship(Message{At: now + 25, SchedAt: now, SrcKey: 0, SrcSeq: seqA, Dst: shards - 1, Fn: pingB})
			seqA++
		})
		if err := se.RunUntil(10_000); err != nil {
			t.Fatal(err)
		}
		return se.Stats().Processed, se.Now()
	}
	wantProcessed, wantNow := run(1)
	if wantProcessed == 0 {
		t.Fatal("serial ping-pong processed no events")
	}
	for _, shards := range []int{2} {
		gotProcessed, gotNow := run(shards)
		if gotProcessed != wantProcessed || gotNow != wantNow {
			t.Fatalf("shards=%d: processed=%d now=%v, want processed=%d now=%v",
				shards, gotProcessed, gotNow, wantProcessed, wantNow)
		}
	}
}

// TestShardedStatsMerge checks the merged counters: sums over shards for
// totals, maximum over shards for the pending high-water mark.
func TestShardedStatsMerge(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(10)
	se.Shard(0).Schedule(5, func() {})
	se.Shard(1).Schedule(5, func() {})
	se.Shard(1).Schedule(6, func() {})
	if err := se.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	st := se.Stats()
	if st.Processed != 3 || st.Scheduled != 3 {
		t.Fatalf("merged totals wrong: %+v", st)
	}
	if st.MaxPending != 2 {
		t.Fatalf("MaxPending must be the max over shards (2), got %d", st.MaxPending)
	}
}

// TestBarrierTaskOrdering runs barrier tasks scheduled for the same
// instant in scheduling order, interleaved correctly with shard events.
func TestBarrierTaskOrdering(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(50)
	var order []string
	se.ScheduleBarrier(100, func(Time) { order = append(order, "task1") })
	se.ScheduleBarrier(100, func(Time) { order = append(order, "task2") })
	se.Shard(1).Schedule(99, func() { order = append(order, "event99") })
	se.Shard(0).Schedule(101, func() { order = append(order, "event101") })
	if err := se.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	want := []string{"event99", "task1", "task2", "event101"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestShardedRunForAdvancesClock pins the horizon semantics: after
// RunFor/RunUntil the coordinator clock sits at the horizon even if all
// shards drained early.
func TestShardedRunForAdvancesClock(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(25)
	if err := se.RunFor(time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if want := FromDuration(time.Microsecond); se.Now() != want {
		t.Fatalf("clock at %v, want %v", se.Now(), want)
	}
}

// TestShardedAccessorsAndStop covers the coordinator's small surface:
// shard count, lookahead round-trip, barrier hooks firing at every
// exchange, and Stop ending the run at the next barrier.
func TestShardedAccessorsAndStop(t *testing.T) {
	se := NewShardedEngine(1, 3)
	if se.NumShards() != 3 {
		t.Fatalf("NumShards = %d", se.NumShards())
	}
	se.SetLookahead(40)
	if se.Lookahead() != 40 {
		t.Fatalf("Lookahead = %v", se.Lookahead())
	}
	hooks := 0
	se.AddBarrierHook(func() { hooks++ })
	se.ScheduleBarrier(0, func(Time) {}) // pin the epoch loop on
	se.Shard(0).Schedule(10, func() {})
	se.Shard(1).Schedule(90, func() {})
	if err := se.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if hooks == 0 {
		t.Fatal("barrier hook never ran")
	}
	se.Shard(2).Schedule(se.Shard(2).Now()+10, func() { se.Stop() })
	if err := se.RunUntil(400); err != ErrStopped {
		t.Fatalf("RunUntil after Stop = %v, want ErrStopped", err)
	}
}

// TestEngineRunFor pins the serial RunFor horizon semantics in-package.
func TestEngineRunFor(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(FromDuration(time.Microsecond/2), func() { ran = true })
	if err := e.RunFor(time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event inside the window did not run")
	}
	if want := FromDuration(time.Microsecond); e.Now() != want {
		t.Fatalf("clock at %v, want %v", e.Now(), want)
	}
}

// TestInjectValidation pins the inject-key invariants: a delivery may
// never carry a scheduling instant after its firing instant, nor a
// negative source key.
func TestInjectValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("InjectArg schedAt>at", func() {
		NewEngine(1).InjectArg(5, 10, func(any) {}, nil)
	})
	mustPanic("InjectSrcArg schedAt>at", func() {
		NewEngine(1).InjectSrcArg(5, 10, 0, 0, func(any) {}, nil)
	})
	mustPanic("InjectSrcArg negative key", func() {
		NewEngine(1).InjectSrcArg(10, 5, -1, 0, func(any) {}, nil)
	})
	mustPanic("NewShardedEngine zero shards", func() {
		NewShardedEngine(1, 0)
	})
	mustPanic("barrier task into the past", func() {
		se := NewShardedEngine(1, 2)
		se.SetLookahead(10)
		if err := se.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		se.ScheduleBarrier(50, func(Time) {})
	})
}

// TestBarrierTaskHeapOrder pushes enough same- and mixed-instant tasks
// through the coordinator heap to exercise its sift paths, and checks
// full (at, schedAt, seq) ordering.
func TestBarrierTaskHeapOrder(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(20)
	var order []int
	rec := func(id int) func(Time) { return func(Time) { order = append(order, id) } }
	for i, at := range []Time{90, 30, 70, 30, 50, 90, 10, 70} {
		se.ScheduleBarrier(at, rec(i))
	}
	if err := se.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	want := []int{6, 1, 3, 4, 2, 7, 0, 5} // by at, then scheduling order
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("task order %v, want %v", order, want)
		}
	}
}

// TestExchangeSchedAtTieBreak ships same-instant messages whose keys
// differ only in SchedAt, covering the second message-sort branch.
func TestExchangeSchedAtTieBreak(t *testing.T) {
	se := NewShardedEngine(1, 2)
	se.SetLookahead(100)
	var order []string
	rec := func(name string) func(any) {
		return func(any) { order = append(order, name) }
	}
	se.Shard(1).Schedule(60, func() {
		out := se.Outbox(1)
		out.Ship(Message{At: 170, SchedAt: 60, SrcKey: 1, SrcSeq: 0, Dst: 0, Fn: rec("late")})
		out.Ship(Message{At: 170, SchedAt: 40, SrcKey: 9, SrcSeq: 0, Dst: 0, Fn: rec("early")})
	})
	if err := se.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order %v, want earlier SchedAt first", order)
	}
}
