// Package sim provides the discrete-event simulation kernel used by every
// packet-level experiment in this repository: a virtual clock, an event
// queue with deterministic ordering, timers, and a seeded random source.
//
// The kernel is single-threaded by design. Determinism — identical results
// for identical seeds — is a hard requirement because the experiments
// compare two protocols under exactly the same arrival pattern.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in integer nanoseconds since the
// start of the simulation. Integer nanoseconds are exact for every rate and
// size used in the paper (a 1500-byte packet takes exactly 1200 ns at
// 10 Gbps and 12000 ns at 1 Gbps).
type Time int64

// Common instants and conversion helpers.
const (
	// TimeZero is the start of every simulation.
	TimeZero Time = 0
	// TimeNever is a sentinel meaning "no scheduled instant".
	TimeNever Time = -1
)

// FromDuration converts a wall-clock style duration into a virtual Time
// offset.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts the timestamp into a time.Duration offset from the
// simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp in seconds as a float, for metric output.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d.Nanoseconds()) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the timestamp with microsecond resolution, which is the
// natural scale for data-center RTTs.
func (t Time) String() string {
	if t == TimeNever {
		return "never"
	}
	return fmt.Sprintf("%.3fµs", float64(t)/1e3)
}
