package sim

import "time"

// Timer is a restartable one-shot timer bound to an engine, mirroring the
// shape of TCP retransmission timers: arm, re-arm (which supersedes the
// previous deadline), and stop.
type Timer struct {
	engine *Engine
	fn     func()
	// fire wraps fn once at construction so Reset/ResetAt schedule a
	// preallocated callback instead of building a closure per rearm
	// (timers rearm on every ACK — the hottest cancel path in a run).
	fire    func()
	pending EventRef
}

// NewTimer creates an unarmed timer that will invoke fn when it fires.
func NewTimer(engine *Engine, fn func()) *Timer {
	t := &Timer{engine: engine, fn: fn}
	t.fire = func() {
		t.pending = EventRef{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d after the current virtual instant,
// cancelling any previously armed deadline.
//
//dtlint:hotpath
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.pending = t.engine.After(d, t.fire)
}

// ResetAt (re)arms the timer to fire at the absolute instant at.
//
//dtlint:hotpath
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.pending = t.engine.Schedule(at, t.fire)
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
//
//dtlint:hotpath
func (t *Timer) Stop() {
	t.pending.Cancel()
	t.pending = EventRef{}
}

// Armed reports whether the timer has a pending deadline.
//
//dtlint:hotpath
func (t *Timer) Armed() bool { return t.pending.Pending() }

// Deadline returns the armed firing instant, or TimeNever if unarmed.
//
//dtlint:hotpath
func (t *Timer) Deadline() Time { return t.pending.At() }
