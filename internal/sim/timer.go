package sim

import "time"

// Timer is a restartable one-shot timer bound to an engine, mirroring the
// shape of TCP retransmission timers: arm, re-arm (which supersedes the
// previous deadline), and stop.
type Timer struct {
	engine  *Engine
	fn      func()
	pending *Event
}

// NewTimer creates an unarmed timer that will invoke fn when it fires.
func NewTimer(engine *Engine, fn func()) *Timer {
	return &Timer{engine: engine, fn: fn}
}

// Reset (re)arms the timer to fire d after the current virtual instant,
// cancelling any previously armed deadline.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.pending = t.engine.After(d, func() {
		t.pending = nil
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at the absolute instant at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.pending = t.engine.Schedule(at, func() {
		t.pending = nil
		t.fn()
	})
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.pending != nil {
		t.pending.Cancel()
		t.pending = nil
	}
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.pending != nil }

// Deadline returns the armed firing instant, or TimeNever if unarmed.
func (t *Timer) Deadline() Time {
	if t.pending == nil {
		return TimeNever
	}
	return t.pending.At
}
