package stats

// EstimatePeriod estimates the dominant oscillation period of a time
// series via the first significant peak of its autocorrelation function.
// It returns the period in the series' time unit and the normalized
// autocorrelation at that lag (a confidence proxy in [−1, 1]); a zero
// period means no credible periodicity was found.
//
// The series is resampled onto a uniform grid first (experiment traces
// are event-sampled, hence irregular), then mean-removed. Used to compare
// the packet simulator's measured queue oscillation against the limit
// cycle predicted by the describing-function analysis.
func EstimatePeriod(s *Series) (period, confidence float64) {
	if s == nil || s.Len() < 16 {
		return 0, 0
	}
	const grid = 2048
	xs, dt := resample(s, grid)
	if dt <= 0 {
		return 0, 0
	}
	mean := Mean(xs)
	for i := range xs {
		xs[i] -= mean
	}
	var energy float64
	for _, v := range xs {
		energy += v * v
	}
	if energy == 0 {
		return 0, 0
	}

	// Autocorrelation up to half the window.
	maxLag := grid / 2
	ac := make([]float64, maxLag)
	for lag := 1; lag < maxLag; lag++ {
		var sum float64
		for i := 0; i+lag < len(xs); i++ {
			sum += xs[i] * xs[i+lag]
		}
		ac[lag] = sum / energy
	}

	// The fundamental is the peak of the first positive excursion after
	// the initial decay: wait until the ACF dips below zero, then track
	// the maximum until it goes negative again (taking the global
	// maximum instead would lock onto a harmonic multiple for
	// sawtooth-like signals).
	lag := 1
	for lag < maxLag && ac[lag] > 0 {
		lag++
	}
	for lag < maxLag && ac[lag] <= 0 {
		lag++
	}
	bestLag, bestVal := 0, 0.0
	for ; lag < maxLag && ac[lag] > 0; lag++ {
		if ac[lag] > bestVal {
			bestVal, bestLag = ac[lag], lag
		}
	}
	if bestLag == 0 || bestVal < 0.05 {
		return 0, 0
	}
	// Parabolic interpolation around the peak for sub-sample precision.
	refined := float64(bestLag)
	if bestLag > 1 && bestLag < maxLag-1 {
		y0, y1, y2 := ac[bestLag-1], ac[bestLag], ac[bestLag+1]
		denom := y0 - 2*y1 + y2
		if denom != 0 {
			refined += 0.5 * (y0 - y2) / denom
		}
	}
	return refined * dt, bestVal
}

// resample maps the (possibly irregular) series onto n uniform samples
// via linear interpolation, returning the samples and the grid step.
func resample(s *Series, n int) ([]float64, float64) {
	first, last := s.At(0), s.At(s.Len()-1)
	span := last.T - first.T
	if span <= 0 {
		return nil, 0
	}
	dt := span / float64(n-1)
	out := make([]float64, n)
	idx := 0
	for i := 0; i < n; i++ {
		t := first.T + float64(i)*dt
		for idx+1 < s.Len() && s.At(idx+1).T < t {
			idx++
		}
		a := s.At(idx)
		if idx+1 >= s.Len() {
			out[i] = a.V
			continue
		}
		b := s.At(idx + 1)
		if b.T == a.T {
			out[i] = b.V
			continue
		}
		frac := (t - a.T) / (b.T - a.T)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		out[i] = a.V*(1-frac) + b.V*frac
	}
	return out, dt
}
