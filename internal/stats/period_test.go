package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sineSeries(period float64, n int, noise float64, rng *rand.Rand) *Series {
	s := NewSeries("sine")
	for i := 0; i < n; i++ {
		t := float64(i) * 0.001
		v := math.Sin(2*math.Pi*t/period) + 5
		if noise > 0 {
			v += noise * (rng.Float64() - 0.5)
		}
		s.Add(t, v)
	}
	return s
}

func TestEstimatePeriodPureSine(t *testing.T) {
	s := sineSeries(0.05, 2000, 0, nil)
	period, conf := EstimatePeriod(s)
	if math.Abs(period-0.05) > 0.003 {
		t.Fatalf("period = %v, want 0.05", period)
	}
	if conf < 0.5 {
		t.Fatalf("confidence = %v, want high for a pure sine", conf)
	}
}

func TestEstimatePeriodNoisySine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := sineSeries(0.08, 4000, 0.8, rng)
	period, conf := EstimatePeriod(s)
	if math.Abs(period-0.08) > 0.008 {
		t.Fatalf("period = %v, want 0.08", period)
	}
	if conf <= 0 {
		t.Fatalf("confidence = %v", conf)
	}
}

func TestEstimatePeriodSawtooth(t *testing.T) {
	// Queue traces are sawtooth-like, not sinusoidal; the estimator must
	// still find the fundamental.
	s := NewSeries("saw")
	const period = 0.02
	for i := 0; i < 4000; i++ {
		t := float64(i) * 0.0005
		phase := math.Mod(t, period) / period
		s.Add(t, 10*phase)
	}
	got, _ := EstimatePeriod(s)
	if math.Abs(got-period) > 0.002 {
		t.Fatalf("period = %v, want %v", got, period)
	}
}

func TestEstimatePeriodIrregularSampling(t *testing.T) {
	// Event-driven sampling: jittered timestamps around the same sine.
	rng := rand.New(rand.NewSource(9))
	s := NewSeries("sine")
	tNow := 0.0
	for tNow < 2.0 {
		tNow += 0.0005 + 0.0005*rng.Float64()
		s.Add(tNow, math.Sin(2*math.Pi*tNow/0.05))
	}
	period, _ := EstimatePeriod(s)
	if math.Abs(period-0.05) > 0.004 {
		t.Fatalf("period = %v, want 0.05", period)
	}
}

func TestEstimatePeriodDegenerateInputs(t *testing.T) {
	if p, _ := EstimatePeriod(nil); p != 0 {
		t.Fatal("nil series should give 0")
	}
	s := NewSeries("short")
	s.Add(0, 1)
	if p, _ := EstimatePeriod(s); p != 0 {
		t.Fatal("short series should give 0")
	}
	flat := NewSeries("flat")
	for i := 0; i < 100; i++ {
		flat.Add(float64(i), 7)
	}
	if p, _ := EstimatePeriod(flat); p != 0 {
		t.Fatal("constant series should give 0")
	}
	same := NewSeries("sametime")
	for i := 0; i < 100; i++ {
		same.Add(1, float64(i))
	}
	if p, _ := EstimatePeriod(same); p != 0 {
		t.Fatal("zero-span series should give 0")
	}
}

func TestEstimatePeriodWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSeries("noise")
	for i := 0; i < 2000; i++ {
		s.Add(float64(i)*0.001, rng.Float64())
	}
	_, conf := EstimatePeriod(s)
	if conf > 0.4 {
		t.Fatalf("white noise got confidence %v; estimator is hallucinating periodicity", conf)
	}
}

// Property: the estimate is invariant to amplitude scaling and value
// offset.
func TestPropertyPeriodScaleInvariant(t *testing.T) {
	f := func(scaleRaw, offsetRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/32
		offset := float64(offsetRaw)
		base := sineSeries(0.04, 2000, 0, nil)
		scaled := NewSeries("scaled")
		for _, p := range base.Points() {
			scaled.Add(p.T, p.V*scale+offset)
		}
		p1, _ := EstimatePeriod(base)
		p2, _ := EstimatePeriod(scaled)
		return math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
