package stats

// Recovery quantifies how a queue trace returns to its pre-fault
// behavior after a chaos perturbation: how long the backlog takes to
// drain back into the reference band, and how long until the queue
// oscillation re-locks onto a credible period again.
type Recovery struct {
	// RefMean and RefStd summarize the pre-fault samples; the reference
	// band is RefMean ± Band·RefStd.
	RefMean, RefStd float64
	// RefPeriod is the pre-fault oscillation period (0 when the
	// pre-fault trace shows no credible periodicity).
	RefPeriod float64

	// Drained reports whether the trace re-entered the reference band
	// after the fault window; DrainTime is the delay from fault end to
	// that first re-entry (0 when the trace never left the band).
	Drained   bool
	DrainTime float64

	// Relocked reports whether a sliding window after the fault end
	// regained a periodic lock (confidence ≥ MinConfidence, and period
	// within PeriodTolerance of RefPeriod when one exists); RelockTime
	// is the delay from fault end to the end of that first window.
	Relocked   bool
	RelockTime float64
}

// RecoveryConfig parameterizes MeasureRecovery. FaultStart/FaultEnd
// bound the perturbation in the series' time unit; zero-valued tuning
// fields take documented defaults.
type RecoveryConfig struct {
	// FaultStart and FaultEnd bound the fault window (absolute times).
	FaultStart, FaultEnd float64
	// Band is the reference-band half-width in standard deviations
	// (default 2).
	Band float64
	// RelockWindow is the sliding-window length for re-lock detection
	// (default 4·RefPeriod, falling back to 1/8 of the post-fault span
	// when there is no reference period).
	RelockWindow float64
	// MinConfidence is the autocorrelation threshold for a lock
	// (default 0.2).
	MinConfidence float64
	// PeriodTolerance is the allowed fractional deviation from
	// RefPeriod (default 0.5).
	PeriodTolerance float64
}

// MeasureRecovery computes fault-recovery metrics of a (typically queue
// occupancy) series around a perturbation window. The reference
// statistics come from the samples before FaultStart; drain and re-lock
// are measured on the samples after FaultEnd.
func MeasureRecovery(s *Series, cfg RecoveryConfig) Recovery {
	var r Recovery
	if s == nil || s.Len() == 0 || cfg.FaultEnd < cfg.FaultStart {
		return r
	}
	if cfg.Band == 0 {
		cfg.Band = 2
	}
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.2
	}
	if cfg.PeriodTolerance == 0 {
		cfg.PeriodTolerance = 0.5
	}

	pre := NewSeries("pre-fault")
	post := NewSeries("post-fault")
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		switch {
		case p.T < cfg.FaultStart:
			pre.Add(p.T, p.V)
		case p.T >= cfg.FaultEnd:
			post.Add(p.T, p.V)
		}
	}
	var w Welford
	for i := 0; i < pre.Len(); i++ {
		w.Add(pre.At(i).V)
	}
	r.RefMean, r.RefStd = w.Mean(), w.StdDev()
	r.RefPeriod, _ = EstimatePeriod(pre)
	if post.Len() == 0 {
		return r
	}

	// Time-to-drain: first post-fault instant the occupancy is back at
	// or below the reference band's upper edge.
	upper := r.RefMean + cfg.Band*r.RefStd
	for i := 0; i < post.Len(); i++ {
		if p := post.At(i); p.V <= upper {
			r.Drained = true
			r.DrainTime = p.T - cfg.FaultEnd
			break
		}
	}

	// Re-lock: slide a window over the post-fault trace until
	// EstimatePeriod reports a credible lock again.
	span := post.At(post.Len()-1).T - post.At(0).T
	window := cfg.RelockWindow
	if window == 0 {
		window = 4 * r.RefPeriod
		if window == 0 {
			window = span / 8
		}
	}
	if window <= 0 || span < window {
		return r
	}
	step := window / 4
	for start := post.At(0).T; start+window <= post.At(post.Len()-1).T+step/2; start += step {
		win := NewSeries("relock-window")
		for i := 0; i < post.Len(); i++ {
			p := post.At(i)
			if p.T >= start && p.T <= start+window {
				win.Add(p.T, p.V)
			}
		}
		period, conf := EstimatePeriod(win)
		if conf < cfg.MinConfidence || period <= 0 {
			continue
		}
		if r.RefPeriod > 0 {
			dev := period/r.RefPeriod - 1
			if dev < 0 {
				dev = -dev
			}
			if dev > cfg.PeriodTolerance {
				continue
			}
		}
		r.Relocked = true
		r.RelockTime = start + window - cfg.FaultEnd
		if r.RelockTime < 0 {
			r.RelockTime = 0
		}
		break
	}
	return r
}
