package stats

import (
	"math"
	"math/rand"
	"testing"
)

// perturbedSine builds a queue-like trace: a noisy sine around level
// until faultStart, a backlog spike decaying from faultEnd, and the sine
// resuming once the backlog is gone.
func perturbedSine(period, level, faultStart, faultEnd, spike, decay float64, rng *rand.Rand) *Series {
	s := NewSeries("perturbed")
	for t := 0.0; t < faultStart+1.0; t += 0.001 {
		base := level + math.Sin(2*math.Pi*t/period)
		switch {
		case t < faultStart:
			s.Add(t, base+0.1*(rng.Float64()-0.5))
		case t < faultEnd:
			s.Add(t, spike) // queue pinned high during the outage
		default:
			// Exponential drain back to the oscillating baseline.
			residue := spike * math.Exp(-(t-faultEnd)/decay)
			s.Add(t, base+residue+0.1*(rng.Float64()-0.5))
		}
	}
	return s
}

func TestMeasureRecoveryDrainAndRelock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		period     = 0.05
		level      = 5.0
		faultStart = 1.0
		faultEnd   = 1.2
	)
	s := perturbedSine(period, level, faultStart, faultEnd, 40, 0.05, rng)
	r := MeasureRecovery(s, RecoveryConfig{FaultStart: faultStart, FaultEnd: faultEnd})
	if math.Abs(r.RefMean-level) > 0.2 {
		t.Fatalf("RefMean = %v, want ≈ %v", r.RefMean, level)
	}
	if math.Abs(r.RefPeriod-period) > 0.005 {
		t.Fatalf("RefPeriod = %v, want ≈ %v", r.RefPeriod, period)
	}
	if !r.Drained {
		t.Fatal("spiked trace reported as never draining")
	}
	// The spike decays to the band edge in a few time constants.
	if r.DrainTime <= 0 || r.DrainTime > 0.5 {
		t.Fatalf("DrainTime = %v, want (0, 0.5]", r.DrainTime)
	}
	if !r.Relocked {
		t.Fatal("resumed sine never re-locked")
	}
	if r.RelockTime <= 0 || r.RelockTime > 0.8 {
		t.Fatalf("RelockTime = %v, want (0, 0.8]", r.RelockTime)
	}
}

func TestMeasureRecoveryNeverDrains(t *testing.T) {
	s := NewSeries("stuck")
	for t := 0.0; t < 2.0; t += 0.001 {
		if t < 1.0 {
			s.Add(t, 5+math.Sin(2*math.Pi*t/0.05))
		} else {
			s.Add(t, 100) // pinned after the fault, forever
		}
	}
	r := MeasureRecovery(s, RecoveryConfig{FaultStart: 1.0, FaultEnd: 1.1})
	if r.Drained {
		t.Fatalf("pinned trace reported drained after %v", r.DrainTime)
	}
	if r.Relocked {
		t.Fatal("constant post-fault trace reported a periodic lock")
	}
}

func TestMeasureRecoveryUnperturbed(t *testing.T) {
	// A trace that never leaves the band drains immediately at the first
	// post-fault sample.
	s := NewSeries("calm")
	for t := 0.0; t < 2.0; t += 0.001 {
		s.Add(t, 5+math.Sin(2*math.Pi*t/0.05))
	}
	r := MeasureRecovery(s, RecoveryConfig{FaultStart: 1.0, FaultEnd: 1.1})
	if !r.Drained || r.DrainTime > 0.01 {
		t.Fatalf("calm trace: Drained=%v DrainTime=%v, want immediate", r.Drained, r.DrainTime)
	}
	if !r.Relocked {
		t.Fatal("calm periodic trace did not re-lock")
	}
}

func TestMeasureRecoveryDegenerate(t *testing.T) {
	if r := MeasureRecovery(nil, RecoveryConfig{FaultEnd: 1}); r.Drained || r.Relocked {
		t.Fatal("nil series produced recovery claims")
	}
	s := NewSeries("x")
	s.Add(0, 1)
	if r := MeasureRecovery(s, RecoveryConfig{FaultStart: 2, FaultEnd: 1}); r.Drained {
		t.Fatal("inverted fault window produced recovery claims")
	}
	// All samples inside the fault window: no reference, no post-fault.
	w := NewSeries("win")
	for t := 1.0; t < 1.1; t += 0.001 {
		w.Add(t, 3)
	}
	r := MeasureRecovery(w, RecoveryConfig{FaultStart: 0.5, FaultEnd: 2})
	if r.Drained || r.Relocked || r.RefMean != 0 {
		t.Fatalf("windowed-out series produced %+v", r)
	}
}

// TestEstimatePeriodShortSeries pins the <16-point early-out boundary.
func TestEstimatePeriodShortSeries(t *testing.T) {
	s := NewSeries("short")
	for i := 0; i < 15; i++ {
		s.Add(float64(i), math.Sin(float64(i)))
	}
	if p, conf := EstimatePeriod(s); p != 0 || conf != 0 {
		t.Fatalf("15-point series gave period=%v conf=%v, want 0,0", p, conf)
	}
	// One more point crosses the threshold and the estimator must at
	// least run without claiming strong confidence in 16 samples.
	s.Add(15, math.Sin(15))
	if _, conf := EstimatePeriod(s); conf < 0 || conf > 1 {
		t.Fatalf("confidence %v out of range", conf)
	}
}

// TestEstimatePeriodPostPerturbationRelock exercises the estimator the
// way MeasureRecovery uses it: windows that straddle the perturbation
// find nothing, windows past it find the original period again.
func TestEstimatePeriodPostPerturbationRelock(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const period = 0.04
	s := perturbedSine(period, 5, 1.0, 1.15, 60, 0.03, rng)

	window := func(lo, hi float64) *Series {
		w := NewSeries("w")
		for i := 0; i < s.Len(); i++ {
			if p := s.At(i); p.T >= lo && p.T < hi {
				w.Add(p.T, p.V)
			}
		}
		return w
	}
	// Far past the perturbation the lock is back at the right period.
	p2, c2 := EstimatePeriod(window(1.5, 1.9))
	if math.Abs(p2-period) > 0.006 {
		t.Fatalf("post-perturbation window: period %v, want ≈ %v (conf %v)", p2, period, c2)
	}
	// A window dominated by the monotone drain must not report the
	// baseline period with comparable confidence.
	p1, c1 := EstimatePeriod(window(1.15, 1.3))
	if math.Abs(p1-period) < 0.004 && c1 >= c2 {
		t.Fatalf("drain window locked onto %v (conf %v ≥ %v); windows cannot discriminate recovery", p1, c1, c2)
	}
}
