package stats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"
)

// Point is one sample of a time series.
type Point struct {
	// T is the sample instant in seconds.
	T float64
	// V is the sampled value.
	V float64
}

// Series is an append-only time series of float samples. It is the common
// currency between experiment runners and output writers.
type Series struct {
	// Name labels the series in CSV and plot output.
	Name string

	points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.points = append(s.points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.points[i] }

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Values returns a copy of just the sampled values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.V
	}
	return out
}

// After returns a new series holding the samples at instants ≥ t. It is
// the standard way to isolate the steady-state tail of an experiment
// trace from its warmup transient before period or amplitude estimation.
func (s *Series) After(t float64) *Series {
	out := NewSeries(s.Name)
	for _, p := range s.points {
		if p.T >= t {
			out.points = append(out.points, p)
		}
	}
	return out
}

// Hash64 returns an FNV-1a checksum over the exact bit patterns of every
// sample (T then V, little-endian float64 bits). Two series hash equal
// iff they are sample-for-sample bit-identical, which makes the checksum
// a compact determinism witness for golden-run digests: any drift in
// event ordering, RNG consumption, or float arithmetic shows up as a
// different hash.
func (s *Series) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range s.points {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.T))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.V))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Summary computes simple statistics of the sampled values.
func (s *Series) Summary() (mean, sd, min, max float64) {
	var w Welford
	for _, p := range s.points {
		w.Add(p.V)
	}
	return w.Mean(), w.StdDev(), w.Min(), w.Max()
}

// WriteCSV writes "t,value" rows with a header naming the series.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t,%s\n", csvEscape(s.Name)); err != nil {
		return err
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%s,%s\n",
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// AsciiPlot renders the series as a crude terminal plot with the given
// width and height in characters. It exists so cmd tools can show a queue
// trace without any plotting dependency.
func (s *Series) AsciiPlot(width, height int) string {
	if len(s.points) == 0 || width < 2 || height < 2 {
		return ""
	}
	minT, maxT := s.points[0].T, s.points[len(s.points)-1].T
	_, _, minV, maxV := s.Summary()
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range s.points {
		x := int((p.T - minT) / (maxT - minT) * float64(width-1))
		y := int((p.V - minV) / (maxV - minV) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g .. %.3g]\n", s.Name, minV, maxV)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "t: %.4gs .. %.4gs\n", minT, maxT)
	return b.String()
}
