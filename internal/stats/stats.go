// Package stats provides the statistical accumulators used by the
// experiments: streaming mean/variance (Welford), time-weighted averages
// for queue occupancy, fixed-interval time series, and percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in a single pass using
// Welford's numerically stable recurrence.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// String summarizes the accumulator for logs.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// TimeWeighted accumulates the time-weighted mean and variance of a
// piecewise-constant signal such as queue occupancy: each value holds from
// the instant it is reported until the next report.
type TimeWeighted struct {
	started   bool
	lastT     float64
	lastV     float64
	totalT    float64
	weightedV float64 // ∫ v dt
	weightedS float64 // ∫ v² dt
	min, max  float64
}

// Observe records that the signal took value v at time t (seconds). The
// previous value is credited with the elapsed interval.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.lastT, tw.lastV = t, v
		tw.min, tw.max = v, v
		return
	}
	dt := t - tw.lastT
	if dt > 0 {
		tw.totalT += dt
		tw.weightedV += tw.lastV * dt
		tw.weightedS += tw.lastV * tw.lastV * dt
	}
	tw.lastT, tw.lastV = t, v
	if v < tw.min {
		tw.min = v
	}
	if v > tw.max {
		tw.max = v
	}
}

// Finish closes the accumulation interval at time t, crediting the final
// value with its holding time.
func (tw *TimeWeighted) Finish(t float64) { tw.Observe(t, tw.lastV) }

// Mean returns the time-weighted mean.
func (tw *TimeWeighted) Mean() float64 {
	if tw.totalT == 0 {
		return tw.lastV
	}
	return tw.weightedV / tw.totalT
}

// Variance returns the time-weighted population variance.
func (tw *TimeWeighted) Variance() float64 {
	if tw.totalT == 0 {
		return 0
	}
	m := tw.Mean()
	v := tw.weightedS/tw.totalT - m*m
	if v < 0 { // numeric noise
		return 0
	}
	return v
}

// StdDev returns the time-weighted standard deviation.
func (tw *TimeWeighted) StdDev() float64 { return math.Sqrt(tw.Variance()) }

// Min returns the smallest observed value.
func (tw *TimeWeighted) Min() float64 { return tw.min }

// Max returns the largest observed value.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Duration returns the total accumulated interval in seconds.
func (tw *TimeWeighted) Duration() float64 { return tw.totalT }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// JainFairness computes Jain's fairness index (Σx)² / (n·Σx²) for a set
// of per-flow allocations: 1 for a perfectly even split, 1/n when one
// flow takes everything. NaN for empty input or all-zero allocations.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
