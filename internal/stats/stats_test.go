package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", w.Variance())
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if !strings.Contains(w.String(), "n=8") {
		t.Fatalf("String = %q", w.String())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

// Property: Welford agrees with the naive two-pass formulas.
func TestPropertyWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 16
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-9) &&
			almostEqual(w.StdDev(), StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedConstantSignal(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 5)
	tw.Observe(3, 5)
	tw.Finish(10)
	if !almostEqual(tw.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", tw.Mean())
	}
	if tw.StdDev() != 0 {
		t.Fatalf("StdDev = %v, want 0", tw.StdDev())
	}
	if tw.Duration() != 10 {
		t.Fatalf("Duration = %v, want 10", tw.Duration())
	}
}

func TestTimeWeightedStepSignal(t *testing.T) {
	// Value 0 for 1s, then 10 for 1s: mean 5, variance 25.
	var tw TimeWeighted
	tw.Observe(0, 0)
	tw.Observe(1, 10)
	tw.Finish(2)
	if !almostEqual(tw.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", tw.Mean())
	}
	if !almostEqual(tw.Variance(), 25, 1e-12) {
		t.Fatalf("Variance = %v, want 25", tw.Variance())
	}
	if tw.Min() != 0 || tw.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", tw.Min(), tw.Max())
	}
}

func TestTimeWeightedWeightsByHoldingTime(t *testing.T) {
	// 2 held for 9s, 20 held for 1s: mean = (18+20)/10.
	var tw TimeWeighted
	tw.Observe(0, 2)
	tw.Observe(9, 20)
	tw.Finish(10)
	if !almostEqual(tw.Mean(), 3.8, 1e-12) {
		t.Fatalf("Mean = %v, want 3.8", tw.Mean())
	}
}

func TestTimeWeightedNoSamples(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 || tw.Variance() != 0 {
		t.Fatal("empty time-weighted accumulator should report zeros")
	}
}

// Property: for a piecewise-constant signal, the time-weighted mean equals
// the Riemann sum computed directly.
func TestPropertyTimeWeightedMatchesRiemann(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var tw TimeWeighted
		sum := 0.0
		for i, v := range vals {
			tw.Observe(float64(i), float64(v))
			sum += float64(v) // each value held for 1s
		}
		tw.Finish(float64(len(vals)))
		return almostEqual(tw.Mean(), sum/float64(len(vals)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

// Property: quantile is monotonic in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []int8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		if a > b {
			a, b = b, a
		}
		va, vb := Quantile(xs, a), Quantile(xs, b)
		lo, hi := Quantile(xs, 0), Quantile(xs, 1)
		return va <= vb+1e-9 && va >= lo-1e-9 && vb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("Mean/StdDev of empty slice should be NaN")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("queue")
	s.Add(0, 1)
	s.Add(1, 3)
	s.Add(2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if p := s.At(1); p.T != 1 || p.V != 3 {
		t.Fatalf("At(1) = %+v", p)
	}
	mean, sd, min, max := s.Summary()
	if !almostEqual(mean, 3, 1e-12) || min != 1 || max != 5 {
		t.Fatalf("Summary = %v %v %v %v", mean, sd, min, max)
	}
	vals := s.Values()
	vals[0] = 99
	if s.At(0).V != 1 {
		t.Fatal("Values returned a live reference")
	}
	pts := s.Points()
	pts[0].V = 99
	if s.At(0).V != 1 {
		t.Fatal("Points returned a live reference")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries("q,len")
	s.Add(0.5, 2)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "t,\"q,len\"\n") {
		t.Fatalf("CSV header = %q", got)
	}
	if !strings.Contains(got, "0.5,2\n") {
		t.Fatalf("CSV body = %q", got)
	}
}

func TestSeriesAsciiPlot(t *testing.T) {
	s := NewSeries("q")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i%4))
	}
	plot := s.AsciiPlot(20, 5)
	if !strings.Contains(plot, "*") {
		t.Fatalf("plot has no marks:\n%s", plot)
	}
	if got := s.AsciiPlot(1, 1); got != "" {
		t.Fatalf("degenerate plot should be empty, got %q", got)
	}
	empty := NewSeries("e")
	if got := empty.AsciiPlot(10, 10); got != "" {
		t.Fatalf("empty-series plot should be empty, got %q", got)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("even split = %v, want 1", got)
	}
	// One flow hogging everything: index = 1/n.
	if got := JainFairness([]float64{10, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("hog = %v, want 0.25", got)
	}
	if !math.IsNaN(JainFairness(nil)) || !math.IsNaN(JainFairness([]float64{0, 0})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}

// Property: Jain's index is scale-invariant and bounded in [1/n, 1].
func TestPropertyJainBounds(t *testing.T) {
	f := func(raw []uint8, scale uint8) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r))
		}
		j := JainFairness(xs)
		if math.IsNaN(j) {
			return true
		}
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		k := 1 + float64(scale)/16
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * k
		}
		return almostEqual(j, JainFairness(scaled), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
