package tcp

import (
	"math/rand"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// alphaHarness builds a minimal two-host topology with a live DCTCP
// sender whose ACK stream the test drives by hand, so marking patterns
// can be chosen adversarially instead of emerging from a queue.
func alphaHarness(t testing.TB, cfg Config) (*sim.Engine, *Sender) {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	pc := netsim.PortConfig{Rate: netsim.Gbps, Delay: time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(src, sw, pc, pc); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, pc, pc); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	dst.Register(1, &ackRecorder{}) // absorb the data stream
	s := NewSender(src, 1, dst.ID(), 0 /* unlimited */, cfg)
	s.Start()
	return e, s
}

// Property: α stays in [0,1] under arbitrary marking sequences — random
// ECE patterns, random ACK strides (including window-spanning jumps and
// duplicate ACKs), random gains G, with retransmission timers live.
func TestPropertyAlphaStaysInUnitInterval(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(DCTCP)
		cfg.G = rng.Float64()
		if cfg.G == 0 {
			cfg.G = 1.0 / 16
		}
		e, s := alphaHarness(t, cfg)
		horizon := sim.TimeZero
		for step := 0; step < 400; step++ {
			// Let the sender transmit what its window allows, with a
			// bounded horizon so pending RTO timers cannot spin the
			// engine forever on an unlimited transfer.
			horizon += sim.Time(100 * time.Microsecond)
			if err := e.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			outstanding := s.sndNxt - s.sndUna
			if outstanding <= 0 {
				continue
			}
			// ACK a random amount: sometimes a stale/duplicate ACK,
			// sometimes a partial window, sometimes everything.
			var ack int64
			switch rng.Intn(10) {
			case 0:
				ack = s.sndUna // duplicate
			case 1:
				ack = s.sndNxt // whole window
			default:
				ack = s.sndUna + 1 + rng.Int63n(outstanding)
			}
			s.Deliver(&netsim.Packet{
				Flow:  1,
				IsAck: true,
				Ack:   ack,
				ECE:   rng.Intn(2) == 0,
			})
			if a := s.Alpha(); a < 0 || a > 1 {
				t.Fatalf("seed %d step %d: alpha %g escaped [0,1] (G=%g)", seed, step, a, cfg.G)
			}
			if s.cwnd < float64(s.cfg.MSS) {
				t.Fatalf("seed %d step %d: cwnd %g below one MSS", seed, step, s.cwnd)
			}
		}
		if s.stats.AlphaUpdates == 0 {
			t.Fatalf("seed %d: no α windows closed — property never exercised", seed)
		}
	}
}

// Property: under saturation marking α climbs monotonically toward 1;
// once the marks stop it decays monotonically toward 0. Both directions
// follow the EWMA α ← (1−g)α + g·frac without ever overshooting.
func TestPropertyAlphaConvergesUnderExtremeMarking(t *testing.T) {
	cfg := DefaultConfig(DCTCP)
	e, s := alphaHarness(t, cfg)
	horizon := sim.TimeZero
	drive := func(steps int, ece bool) {
		for i := 0; i < steps; i++ {
			horizon += sim.Time(100 * time.Microsecond)
			if err := e.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			if s.sndNxt == s.sndUna {
				continue
			}
			prev := s.Alpha()
			s.Deliver(&netsim.Packet{Flow: 1, IsAck: true, Ack: s.sndNxt, ECE: ece})
			a := s.Alpha()
			if ece && a < prev-1e-12 {
				t.Fatalf("step %d: α decreased (%g → %g) while every byte was marked", i, prev, a)
			}
			if !ece && a > prev+1e-12 {
				t.Fatalf("step %d: α increased (%g → %g) with no marks at all", i, prev, a)
			}
		}
	}
	drive(200, true)
	if a := s.Alpha(); a < 0.9 || a > 1 {
		t.Fatalf("α = %g after sustained marking, want near 1", a)
	}
	drive(200, false)
	if a := s.Alpha(); a < 0 || a > 0.1 {
		t.Fatalf("α = %g after marks ceased, want near 0", a)
	}
}
