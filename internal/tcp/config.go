// Package tcp implements the transport endpoints of the experiments: a
// window-based TCP sender/receiver pair with slow start, congestion
// avoidance, NewReno fast recovery and RTO, plus the two ECN responses the
// paper compares — classic RFC3168 halving and DCTCP's α-proportional
// decrease. The switch-side marking laws live in internal/aqm; this
// package is the end-host side.
//
// Connection establishment and teardown are not modelled: flows start
// sending in slow start immediately, which matches how both the paper and
// the original DCTCP evaluation configure ns-2.
package tcp

import (
	"time"
)

// Variant selects the congestion-control response to ECN marks.
type Variant int

// Congestion control variants.
const (
	// Reno is plain NewReno with no ECN reaction (marks are ignored,
	// losses drive the window).
	Reno Variant = iota + 1
	// RenoECN is NewReno with the RFC3168 response: halve the window at
	// most once per RTT when ECE arrives.
	RenoECN
	// DCTCP estimates the marked fraction α and reduces the window by
	// α/2 once per window of data, per Alizadeh et al.
	DCTCP
	// Cubic is loss-driven CUBIC (RFC 8312), the Linux default of the
	// paper's era, with no ECN reaction: the congestion-avoidance window
	// follows the cubic curve W(t) = C·(t−K)³ + Wmax anchored at the
	// last loss event, bounded below by the Reno-friendly region.
	Cubic
	// D2TCP is the deadline-aware DCTCP of Vamanan et al. (SIGCOMM'12),
	// cited by the paper as a DCTCP successor: the per-window reduction
	// uses the penalty p = α^d, where the urgency d > 1 for flows close
	// to their deadline (a smaller penalty, hence gentler backoff) and
	// d < 1 for flows with slack (harsher backoff). Without a deadline
	// it degenerates to DCTCP (d = 1).
	D2TCP
	// DCTCPPlus is DCTCP with the slow-timer backoff state machine
	// (DCTCP_NORMAL / DCTCP_TIME_INC / DCTCP_TIME_DES): once the window
	// has collapsed to its floor and congestion persists, the sender
	// stops pushing harder and instead paces every transmission by a
	// randomized slow-timer delay, growing the timer additively per
	// congested window and shrinking it multiplicatively per clear one.
	// It attacks the incast-oscillation regime from the sender side,
	// where DT-DCTCP attacks it from the marking side.
	DCTCPPlus
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Reno:
		return "reno"
	case RenoECN:
		return "reno-ecn"
	case DCTCP:
		return "dctcp"
	case Cubic:
		return "cubic"
	case D2TCP:
		return "d2tcp"
	case DCTCPPlus:
		return "dctcp+"
	default:
		return "invalid"
	}
}

// Config carries the endpoint parameters. The zero value is not usable;
// call DefaultConfig and override fields.
type Config struct {
	// Variant selects the congestion-control response.
	Variant Variant
	// MSS is the maximum payload bytes per segment.
	MSS int
	// HeaderBytes is added to every packet on the wire; a pure ACK is
	// exactly HeaderBytes long.
	HeaderBytes int
	// InitialWindow is the initial congestion window in segments.
	InitialWindow int
	// G is DCTCP's EWMA gain for α (the paper uses 1/16).
	G float64
	// InitialAlpha seeds DCTCP's α estimate; the conservative choice
	// of 1 matches the reference implementation.
	InitialAlpha float64
	// AckEvery sets the delayed-ACK factor: 1 acknowledges every
	// segment, 2 every other segment. The DCTCP ECE echo state machine
	// flushes early whenever the CE state changes.
	AckEvery int
	// DelayedAckTimeout bounds how long the receiver holds a delayed
	// ACK.
	DelayedAckTimeout time.Duration
	// RTOMin clamps the retransmission timeout from below. The paper's
	// incast experiments inherit the Linux default of 200 ms.
	RTOMin time.Duration
	// RTOInitial is the timeout before any RTT sample exists.
	RTOInitial time.Duration
	// RTOMax caps exponential backoff.
	RTOMax time.Duration

	// BackoffUnit is DCTCP+'s additive slow-timer increment: each
	// congested observation window at the cwnd floor grows the pacing
	// delay by this much.
	BackoffUnit time.Duration
	// SlowTimerThreshold is the DCTCP+ floor below which the divided
	// slow timer snaps to zero and the sender returns to DCTCP_NORMAL.
	SlowTimerThreshold time.Duration
	// SlowTimerMax caps the DCTCP+ slow timer so pacing can never
	// stretch a transfer past RTO-collapse territory.
	SlowTimerMax time.Duration
	// DivisorFactor divides the DCTCP+ slow timer on every uncongested
	// observation window in DCTCP_TIME_DES (the reference uses 2).
	DivisorFactor float64
	// PacingSeed seeds the DCTCP+ sender's private pacing RNG. Workload
	// drivers draw it from the construction engine's seeded source — one
	// draw per sender, in construction order — so pacing randomness
	// stays a pure function of the run seed and, because construction
	// happens before the shards fork, byte-identical for any shard
	// count. Zero falls back to a flow-derived constant.
	PacingSeed int64
}

// DefaultConfig returns the parameters used throughout the paper unless an
// experiment overrides them: 1.5 KB packets, IW3 (Linux 2.6.38 default),
// g = 1/16, per-segment ACKs, RTOmin = 200 ms.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:           v,
		MSS:               1460,
		HeaderBytes:       40,
		InitialWindow:     3,
		G:                 1.0 / 16,
		InitialAlpha:      1,
		AckEvery:          1,
		DelayedAckTimeout: 500 * time.Microsecond,
		RTOMin:            200 * time.Millisecond,
		RTOInitial:        200 * time.Millisecond,
		RTOMax:            60 * time.Second,
		// DCTCP+ slow-timer defaults, scaled to the paper's ~100 µs
		// datacenter RTT (the ns-3 reference uses a 100 µs backoff unit).
		BackoffUnit:        100 * time.Microsecond,
		SlowTimerThreshold: 50 * time.Microsecond,
		SlowTimerMax:       5 * time.Millisecond,
		DivisorFactor:      2,
	}
}

// PacketSize returns the wire size of a full segment.
func (c Config) PacketSize() int { return c.MSS + c.HeaderBytes }

// ECT reports whether this variant negotiates ECN-capable transport.
func (c Config) ECT() bool { return c.Variant != Reno && c.Variant != Cubic }

// dctcpLike reports whether the variant runs DCTCP's α estimator.
func (v Variant) dctcpLike() bool { return v == DCTCP || v == D2TCP || v == DCTCPPlus }

// sanitize fills unset fields with defaults so harness code can specify
// only what it cares about.
func (c Config) sanitize() Config {
	d := DefaultConfig(c.Variant)
	if c.Variant == 0 {
		c.Variant = DCTCP
	}
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = d.HeaderBytes
	}
	if c.InitialWindow <= 0 {
		c.InitialWindow = d.InitialWindow
	}
	if c.G <= 0 || c.G > 1 {
		c.G = d.G
	}
	if c.InitialAlpha < 0 || c.InitialAlpha > 1 {
		c.InitialAlpha = d.InitialAlpha
	}
	if c.AckEvery <= 0 {
		c.AckEvery = d.AckEvery
	}
	if c.DelayedAckTimeout <= 0 {
		c.DelayedAckTimeout = d.DelayedAckTimeout
	}
	if c.RTOMin <= 0 {
		c.RTOMin = d.RTOMin
	}
	if c.RTOInitial <= 0 {
		c.RTOInitial = d.RTOInitial
	}
	if c.RTOMax <= 0 {
		c.RTOMax = d.RTOMax
	}
	if c.BackoffUnit <= 0 {
		c.BackoffUnit = d.BackoffUnit
	}
	if c.SlowTimerThreshold <= 0 {
		c.SlowTimerThreshold = d.SlowTimerThreshold
	}
	if c.SlowTimerMax <= 0 {
		c.SlowTimerMax = d.SlowTimerMax
	}
	if c.DivisorFactor <= 1 {
		c.DivisorFactor = d.DivisorFactor
	}
	return c
}
