package tcp

import (
	"math"

	"dtdctcp/internal/sim"
)

// cubicState carries RFC 8312's congestion-avoidance state. Windows are
// tracked in segments (the RFC's unit); conversion to bytes happens at
// the sender boundary.
type cubicState struct {
	// wMax is the window (segments) at the last reduction.
	wMax float64
	// epochStart anchors the cubic curve; zero means no epoch yet.
	epochStart sim.Time
	// k is the curve's inflection offset in seconds: K = ∛(wMax·β/C).
	k float64
	// ackedSinceEpoch accumulates acked segments for the TCP-friendly
	// estimate.
	ackedSinceEpoch float64
}

// RFC 8312 constants: multiplicative decrease factor and curve scale.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// onLoss records a congestion event and returns the new window (segments).
func (c *cubicState) onLoss(cwndSegs float64) float64 {
	// Fast convergence (RFC §4.6): if the window stopped growing since
	// the last event, release capacity faster.
	if cwndSegs < c.wMax {
		c.wMax = cwndSegs * (1 + cubicBeta) / 2
	} else {
		c.wMax = cwndSegs
	}
	c.epochStart = 0 // re-anchor on the next ACK
	next := cwndSegs * cubicBeta
	if next < 2 {
		next = 2
	}
	return next
}

// target returns the window (segments) the cubic curve prescribes at
// elapsed time t into the epoch, with the TCP-friendly floor computed
// from the acked segment count and srtt.
func (c *cubicState) target(now sim.Time, cwndSegs, srttSec float64) float64 {
	if c.epochStart == 0 {
		c.epochStart = now
		if c.wMax < cwndSegs {
			c.wMax = cwndSegs
		}
		c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		c.ackedSinceEpoch = 0
	}
	t := (now - c.epochStart).Duration().Seconds()
	wCubic := cubicC*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region (RFC §4.2): emulate Reno's long-term rate.
	wEst := c.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*c.ackedSinceEpoch/math.Max(cwndSegs, 1)
	if srttSec <= 0 {
		wEst = 0
	}
	if wEst > wCubic {
		return wEst
	}
	return wCubic
}

// onAck accumulates acked segments for the friendly-region estimate.
func (c *cubicState) onAck(segs float64) { c.ackedSinceEpoch += segs }

// reset clears all epoch state (used on RTO).
func (c *cubicState) reset() {
	c.epochStart = 0
	c.ackedSinceEpoch = 0
}
