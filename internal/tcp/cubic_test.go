package tcp

import (
	"math"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func TestCubicVariantBasics(t *testing.T) {
	if Cubic.String() != "cubic" {
		t.Fatal("name")
	}
	if DefaultConfig(Cubic).ECT() {
		t.Fatal("loss-based CUBIC must not negotiate ECN")
	}
	if Cubic.dctcpLike() {
		t.Fatal("CUBIC is not DCTCP-like")
	}
}

func TestCubicStateOnLoss(t *testing.T) {
	var c cubicState
	// Growing window: wMax = cwnd, reduce to β·cwnd.
	next := c.onLoss(100)
	if next != 70 {
		t.Fatalf("reduction to %v, want 70", next)
	}
	if c.wMax != 100 {
		t.Fatalf("wMax = %v, want 100", c.wMax)
	}
	// Fast convergence: a loss below the previous wMax shrinks wMax.
	next = c.onLoss(60)
	if c.wMax >= 60 {
		t.Fatalf("fast convergence: wMax = %v, want < 60", c.wMax)
	}
	if next != 42 {
		t.Fatalf("reduction to %v, want 42", next)
	}
	// Floor at 2 segments.
	if got := c.onLoss(1); got != 2 {
		t.Fatalf("floor: %v", got)
	}
}

func TestCubicCurveShape(t *testing.T) {
	var c cubicState
	c.onLoss(100) // wMax=100, window now 70
	// Anchor the epoch at t=1ns (0 means "unanchored" to the state).
	w0 := c.target(1, 70, 100e-6)
	// At t = K the curve returns to wMax.
	k := c.k
	wAtK := c.target(sim.Time(k*1e9), 70, 100e-6)
	if math.Abs(wAtK-100) > 1 {
		t.Fatalf("W(K) = %v, want ≈ wMax=100", wAtK)
	}
	// Beyond K the curve keeps growing.
	wLater := c.target(sim.Time(2*k*1e9), 70, 100e-6)
	if !(w0 <= wAtK && wAtK < wLater) {
		t.Fatalf("curve not concave-up around K: %v %v %v", w0, wAtK, wLater)
	}
}

func TestCubicBulkTransferCompletes(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 300, nil)
	const total = 4 << 20
	s, r := d.pair(0, total, DefaultConfig(Cubic))
	s.Start()
	if err := d.engine.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("cubic transfer incomplete: acked=%d", s.Acked())
	}
	// The 300-packet buffer forces losses; CUBIC must recover via fast
	// retransmit, not RTOs.
	if s.Stats().FastRecoveries == 0 {
		t.Fatal("no loss events: buffer too big for this test to mean anything")
	}
}

func TestCubicOutgrowsRenoAfterLoss(t *testing.T) {
	// After a loss at a large window on a long-RTT path, CUBIC's window
	// recovers toward wMax faster than Reno's +1/RTT.
	run := func(v Variant) float64 {
		d := newDumbbell(t, 1, 1*netsim.Gbps, 2*time.Millisecond, 200, &dropNth{n: 600})
		s, _ := d.pair(0, 0, DefaultConfig(v))
		s.Start()
		if err := d.engine.RunFor(600 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if s.Stats().FastRecoveries == 0 {
			t.Fatalf("%v: no loss event", v)
		}
		return s.CwndPackets()
	}
	cubic := run(Cubic)
	reno := run(Reno)
	if cubic <= reno {
		t.Fatalf("post-loss window: cubic %.1f vs reno %.1f, want cubic larger", cubic, reno)
	}
}
