package tcp

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func TestD2TCPVariantString(t *testing.T) {
	if D2TCP.String() != "d2tcp" {
		t.Fatal("name")
	}
	if !D2TCP.dctcpLike() || !DCTCP.dctcpLike() || Reno.dctcpLike() {
		t.Fatal("dctcpLike classification")
	}
	if !DefaultConfig(D2TCP).ECT() {
		t.Fatal("D2TCP must be ECT")
	}
}

func TestUrgencyNeutralCases(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	s, _ := d.pair(0, 100*1460, DefaultConfig(D2TCP))
	// No deadline set → d = 1.
	if got := s.urgency(); got != 1 {
		t.Fatalf("urgency without deadline = %v", got)
	}
	// Deadline set but no RTT estimate yet → d = 1.
	s.Deadline = sim.FromDuration(time.Second)
	if got := s.urgency(); got != 1 {
		t.Fatalf("urgency without RTT sample = %v", got)
	}
}

func TestUrgencyClamping(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	s, _ := d.pair(0, 1000*1460, DefaultConfig(D2TCP))
	s.Start()
	if err := d.engine.RunFor(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Absurdly tight deadline: d clamps at 2.
	s.Deadline = d.engine.Now().Add(time.Nanosecond)
	if got := s.urgency(); got != 2 {
		t.Fatalf("tight-deadline urgency = %v, want 2", got)
	}
	// Absurdly loose deadline: d clamps at 0.5.
	s.Deadline = d.engine.Now().Add(time.Hour)
	if got := s.urgency(); got != 0.5 {
		t.Fatalf("loose-deadline urgency = %v, want 0.5", got)
	}
	// Past deadline: maximum urgency.
	if err := d.engine.RunFor(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Deadline = 1 // long past
	if got := s.urgency(); got != 2 {
		t.Fatalf("past-deadline urgency = %v, want 2", got)
	}
}

// The headline D2TCP behaviour: under identical marking, the tight-deadline
// flow backs off less and finishes first.
func TestD2TCPTightDeadlineFlowFinishesFirst(t *testing.T) {
	pol := aqm.NewSingleThresholdPackets(20, 1500)
	d := newDumbbell(t, 2, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	const total = 2 << 20 // 2 MB each
	cfg := DefaultConfig(D2TCP)

	tight, _ := d.pair(0, total, cfg)
	slack, _ := d.pair(1, total, cfg)
	// Both flows fit their deadlines only if they get a fair share; the
	// tight one has barely enough time, the slack one has plenty.
	tight.Deadline = sim.FromDuration(40 * time.Millisecond)
	slack.Deadline = sim.FromDuration(10 * time.Second)
	tight.Start()
	slack.Start()
	if err := d.engine.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !tight.Completed() || !slack.Completed() {
		t.Fatalf("transfers incomplete: tight=%v slack=%v", tight.Completed(), slack.Completed())
	}
	if tight.CompletionTime() >= slack.CompletionTime() {
		t.Fatalf("tight-deadline flow finished at %v, slack at %v: priority inverted",
			tight.CompletionTime(), slack.CompletionTime())
	}
}

// Without deadlines, D2TCP must behave exactly like DCTCP (d = 1 always):
// same marking environment, statistically indistinguishable progress.
func TestD2TCPWithoutDeadlineMatchesDCTCP(t *testing.T) {
	run := func(v Variant) int64 {
		pol := aqm.NewSingleThresholdPackets(40, 1500)
		d := newDumbbell(t, 2, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
		a, _ := d.pair(0, 0, DefaultConfig(v))
		b, _ := d.pair(1, 0, DefaultConfig(v))
		a.Start()
		b.Start()
		if err := d.engine.RunFor(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return a.Acked() + b.Acked()
	}
	dctcp := run(DCTCP)
	d2tcp := run(D2TCP)
	if dctcp != d2tcp {
		t.Fatalf("deadline-free D2TCP diverged from DCTCP: %d vs %d bytes", d2tcp, dctcp)
	}
}
