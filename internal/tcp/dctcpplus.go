package tcp

import (
	"math/rand"
	"time"

	"dtdctcp/internal/sim"
)

// PlusState is the DCTCP+ slow-timer state, mirroring the ns-3 reference
// (TcpDctcpPlus): NORMAL sends unpaced; TIME_INC grows the slow timer
// additively while congestion persists at the window floor; TIME_DES
// shrinks it multiplicatively once congestion clears, snapping back to
// NORMAL below the threshold.
type PlusState int

// DCTCP+ slow-timer states.
const (
	PlusNormal PlusState = iota
	PlusTimeInc
	PlusTimeDes
)

// String names the state after the reference implementation's enum.
func (st PlusState) String() string {
	switch st {
	case PlusNormal:
		return "DCTCP_NORMAL"
	case PlusTimeInc:
		return "DCTCP_TIME_INC"
	case PlusTimeDes:
		return "DCTCP_TIME_DES"
	default:
		return "invalid"
	}
}

// plusPacer carries one DCTCP+ sender's slow-timer machinery. Pacing
// randomness comes from a sender-private RNG seeded at construction from
// the run's root source (Config.PacingSeed): runtime draws never touch
// the engine RNG, so the per-shard event streams stay byte-identical for
// any shard count.
type plusPacer struct {
	state    PlusState
	slowTime time.Duration
	// congested latches loss signals (retransmission, RTO) between
	// observation-window closings; ECE marks are already counted by the
	// α estimator's markedBytes.
	congested bool
	timer     *sim.Timer
	armed     bool
	rng       *rand.Rand
}

func newPlusPacer(s *Sender, cfg Config) *plusPacer {
	seed := cfg.PacingSeed
	if seed == 0 {
		// Deterministic flow-derived fallback for directly constructed
		// senders (unit tests, ad-hoc harnesses).
		seed = int64(s.flow) + 1
	}
	p := &plusPacer{
		//dtlint:allow nondeterm: seeded from the construction engine's source via Config.PacingSeed
		rng: rand.New(rand.NewSource(seed)),
	}
	p.timer = sim.NewTimer(s.engine, s.onPace)
	return p
}

// delay draws one randomized pacing delay, uniform in
// [slowTime/2, 3·slowTime/2) — the reference's randomizeSendingTime
// around the slow timer.
func (p *plusPacer) delay() time.Duration {
	return time.Duration(float64(p.slowTime) * (0.5 + p.rng.Float64()))
}

// tick advances the state machine at the close of one observation
// window. congested means the window saw ECE marks, a retransmission or
// an RTO; atFloor means the congestion window sits at its minimum, the
// regime where conventional DCTCP has nothing left to cut and incast
// rounds devolve into synchronized bursts.
func (p *plusPacer) tick(cfg Config, congested, atFloor bool) {
	switch p.state {
	case PlusNormal:
		if congested && atFloor {
			p.state = PlusTimeInc
			p.grow(cfg)
		}
	case PlusTimeInc:
		if congested {
			p.grow(cfg)
		} else {
			p.state = PlusTimeDes
		}
	case PlusTimeDes:
		if congested {
			p.state = PlusTimeInc
			p.grow(cfg)
		} else {
			p.slowTime = time.Duration(float64(p.slowTime) / cfg.DivisorFactor)
			if p.slowTime <= cfg.SlowTimerThreshold {
				p.slowTime = 0
				p.state = PlusNormal
			}
		}
	}
	p.congested = false
}

// grow applies the additive slow-timer increase, capped at SlowTimerMax.
func (p *plusPacer) grow(cfg Config) {
	p.slowTime += cfg.BackoffUnit
	if p.slowTime > cfg.SlowTimerMax {
		p.slowTime = cfg.SlowTimerMax
	}
}

// PlusState returns the DCTCP+ slow-timer state (PlusNormal for other
// variants).
func (s *Sender) PlusState() PlusState {
	if s.plus == nil {
		return PlusNormal
	}
	return s.plus.state
}

// SlowTime returns the DCTCP+ slow-timer value (zero for other variants
// and in DCTCP_NORMAL).
func (s *Sender) SlowTime() time.Duration {
	if s.plus == nil {
		return 0
	}
	return s.plus.slowTime
}

// onPace fires when the randomized pacing delay elapses: release exactly
// one segment, then fall back into trySend, which re-arms the pacer for
// the next segment while the slow timer is nonzero.
func (s *Sender) onPace() {
	s.plus.armed = false
	if s.completed {
		return
	}
	inFlight := float64(s.sndNxt - s.sndUna)
	if inFlight+float64(s.cfg.MSS) > s.cwnd+0.5 {
		return
	}
	payload := int64(s.cfg.MSS)
	if s.total > 0 {
		remaining := s.total - s.sndNxt
		if remaining <= 0 {
			return
		}
		if remaining < payload {
			payload = remaining
		}
	}
	s.stats.PacedSegments++
	s.transmit(s.sndNxt, int(payload))
	s.sndNxt += payload
	s.trySend()
}
