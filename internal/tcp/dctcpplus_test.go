package tcp

import (
	"math/rand"
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
)

func TestPlusStateString(t *testing.T) {
	tests := []struct {
		st   PlusState
		want string
	}{
		{PlusNormal, "DCTCP_NORMAL"},
		{PlusTimeInc, "DCTCP_TIME_INC"},
		{PlusTimeDes, "DCTCP_TIME_DES"},
		{PlusState(99), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.st.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if DCTCPPlus.String() != "dctcp+" {
		t.Fatal("variant name")
	}
	if !DCTCPPlus.dctcpLike() {
		t.Fatal("DCTCP+ must run the α estimator")
	}
	if !DefaultConfig(DCTCPPlus).ECT() {
		t.Fatal("DCTCP+ must be ECT")
	}
}

// Property: under arbitrary adversarial congestion/floor streams the state
// machine never leaves {NORMAL, TIME_INC, TIME_DES}, the slow timer stays
// in [0, SlowTimerMax], and the timer is zero exactly in DCTCP_NORMAL.
func TestPropertyPlusStateMachineClosure(t *testing.T) {
	d := newDumbbell(t, 1, netsim.Gbps, 25*time.Microsecond, 100, nil)
	s, _ := d.pair(0, 0, DefaultConfig(DCTCPPlus))
	cfg := s.cfg
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := s.plus
		p.state, p.slowTime, p.congested = PlusNormal, 0, false
		for step := 0; step < 500; step++ {
			congested := rng.Intn(2) == 0
			atFloor := rng.Intn(2) == 0
			p.tick(cfg, congested, atFloor)
			if p.state != PlusNormal && p.state != PlusTimeInc && p.state != PlusTimeDes {
				t.Fatalf("seed %d step %d: state left the machine: %v", seed, step, p.state)
			}
			if p.slowTime < 0 || p.slowTime > cfg.SlowTimerMax {
				t.Fatalf("seed %d step %d: slow timer %v outside [0, %v]", seed, step, p.slowTime, cfg.SlowTimerMax)
			}
			if (p.state == PlusNormal) != (p.slowTime == 0) {
				t.Fatalf("seed %d step %d: state %v with slow timer %v", seed, step, p.state, p.slowTime)
			}
			if p.congested {
				t.Fatalf("seed %d step %d: tick left the congestion latch set", seed, step)
			}
			// Whenever the timer is armed-able, every pacing draw must stay
			// inside the configured band [slowTime/2, 3·slowTime/2).
			if p.slowTime > 0 {
				for i := 0; i < 5; i++ {
					delay := p.delay()
					if delay < p.slowTime/2 || delay >= p.slowTime*3/2 {
						t.Fatalf("seed %d step %d: pacing delay %v outside [%v, %v)",
							seed, step, delay, p.slowTime/2, p.slowTime*3/2)
					}
				}
			}
		}
	}
}

// The reference transition table, step by step.
func TestPlusStateMachineTransitions(t *testing.T) {
	d := newDumbbell(t, 1, netsim.Gbps, 25*time.Microsecond, 100, nil)
	s, _ := d.pair(0, 0, DefaultConfig(DCTCPPlus))
	cfg := s.cfg
	p := s.plus

	// NORMAL ignores congestion away from the floor.
	p.tick(cfg, true, false)
	if p.state != PlusNormal || p.slowTime != 0 {
		t.Fatalf("congestion off-floor moved NORMAL: %v %v", p.state, p.slowTime)
	}
	// Congestion at the floor enters TIME_INC and grows by one unit.
	p.tick(cfg, true, true)
	if p.state != PlusTimeInc || p.slowTime != cfg.BackoffUnit {
		t.Fatalf("after floor congestion: %v %v", p.state, p.slowTime)
	}
	// Persistent congestion keeps growing additively, capped at max.
	for i := 0; i < 1000; i++ {
		p.tick(cfg, true, false)
	}
	if p.state != PlusTimeInc || p.slowTime != cfg.SlowTimerMax {
		t.Fatalf("sustained congestion: %v %v, want TIME_INC at cap %v", p.state, p.slowTime, cfg.SlowTimerMax)
	}
	// One clear window moves to TIME_DES without shrinking yet.
	p.tick(cfg, false, false)
	if p.state != PlusTimeDes || p.slowTime != cfg.SlowTimerMax {
		t.Fatalf("first clear window: %v %v", p.state, p.slowTime)
	}
	// Congestion in TIME_DES bounces back to TIME_INC and grows (cap holds).
	p.tick(cfg, true, false)
	if p.state != PlusTimeInc || p.slowTime != cfg.SlowTimerMax {
		t.Fatalf("bounce back: %v %v", p.state, p.slowTime)
	}
	// Clear windows halve the timer down to the threshold, then NORMAL.
	p.tick(cfg, false, false) // → TIME_DES
	prev := p.slowTime
	for i := 0; p.state == PlusTimeDes && i < 100; i++ {
		p.tick(cfg, false, false)
		if p.state == PlusTimeDes && p.slowTime >= prev {
			t.Fatalf("clear window did not shrink the timer: %v → %v", prev, p.slowTime)
		}
		prev = p.slowTime
	}
	if p.state != PlusNormal || p.slowTime != 0 {
		t.Fatalf("timer did not snap back to NORMAL: %v %v", p.state, p.slowTime)
	}
}

// Other variants carry no pacer and report the neutral state.
func TestPlusAccessorsOnOtherVariants(t *testing.T) {
	d := newDumbbell(t, 1, netsim.Gbps, 25*time.Microsecond, 100, nil)
	s, _ := d.pair(0, 0, DefaultConfig(DCTCP))
	if s.plus != nil {
		t.Fatal("DCTCP sender grew a pacer")
	}
	if s.PlusState() != PlusNormal || s.SlowTime() != 0 {
		t.Fatalf("neutral accessors: %v %v", s.PlusState(), s.SlowTime())
	}
}

// plusIncast drives an incast round set hot enough to collapse windows to
// the floor and returns the senders after runFor of simulated time.
func plusIncast(t *testing.T, nSenders int, seedOffset int64, runFor time.Duration) []*Sender {
	t.Helper()
	pol := aqm.NewSingleThresholdPackets(10, 1500)
	d := newDumbbell(t, nSenders, 200*netsim.Mbps, 25*time.Microsecond, 20, pol)
	cfg := DefaultConfig(DCTCPPlus)
	cfg.RTOMin = 10 * time.Millisecond // datacenter floor, as in the paper's incast runs
	cfg.RTOInitial = 10 * time.Millisecond
	var senders []*Sender
	for i := 0; i < nSenders; i++ {
		c := cfg
		c.PacingSeed = seedOffset + int64(i) + 1
		s, _ := d.pair(i, 0, c)
		s.Start()
		senders = append(senders, s)
	}
	if err := d.engine.RunFor(runFor); err != nil {
		t.Fatal(err)
	}
	return senders
}

// End-to-end: a hot incast must actually drive senders into the slow-timer
// regime — backoffs happen, paced segments flow, and every observed state
// stays inside the machine.
func TestPlusIncastEngagesSlowTimer(t *testing.T) {
	senders := plusIncast(t, 16, 0, 200*time.Millisecond)
	var backoffs, paced uint64
	for _, s := range senders {
		st := s.PlusState()
		if st != PlusNormal && st != PlusTimeInc && st != PlusTimeDes {
			t.Fatalf("sender in invalid state %v", st)
		}
		if s.SlowTime() < 0 || s.SlowTime() > s.cfg.SlowTimerMax {
			t.Fatalf("slow timer %v outside [0, %v]", s.SlowTime(), s.cfg.SlowTimerMax)
		}
		stats := s.Stats()
		backoffs += stats.SlowTimerBackoffs
		paced += stats.PacedSegments
		if s.Acked() == 0 {
			t.Fatal("a sender moved no data")
		}
	}
	if backoffs == 0 {
		t.Fatal("vacuous: incast never triggered a slow-timer backoff")
	}
	if paced == 0 {
		t.Fatal("vacuous: no segment was ever released by the pacer")
	}
}

// Determinism: identical seeds give identical transfer and pacing stats;
// the pacing RNG is private per sender and derived only from PacingSeed.
func TestPlusPacingDeterministicPerSeed(t *testing.T) {
	a := plusIncast(t, 8, 100, 60*time.Millisecond)
	b := plusIncast(t, 8, 100, 60*time.Millisecond)
	for i := range a {
		sa, sb := a[i].Stats(), b[i].Stats()
		if sa != sb || a[i].Acked() != b[i].Acked() {
			t.Fatalf("sender %d diverged across identical runs:\n%+v\n%+v", i, sa, sb)
		}
	}
	// A different pacing seed must actually change behaviour somewhere —
	// otherwise the seed is dead plumbing.
	c := plusIncast(t, 8, 9000, 60*time.Millisecond)
	same := true
	for i := range a {
		if a[i].Stats() != c[i].Stats() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing every pacing seed changed nothing")
	}
}
