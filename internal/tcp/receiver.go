package tcp

import (
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Receiver is the data sink of one flow. It reassembles in-order delivery,
// generates (optionally delayed) cumulative ACKs, and echoes congestion
// marks back to the sender:
//
//   - DCTCP variant: the ACK's ECE mirrors the CE state of the data stream
//     exactly, using the delayed-ACK state machine from the DCTCP paper —
//     when the CE state changes, the pending ACK is flushed immediately so
//     the sender's marked-byte accounting stays accurate;
//   - RenoECN variant: ECE latches on a CE mark and stays set until the
//     sender confirms a window reduction with CWR (RFC 3168);
//   - Reno: marks are ignored.
type Receiver struct {
	engine *sim.Engine
	host   *netsim.Host
	flow   netsim.FlowID
	peer   netsim.NodeID
	cfg    Config

	rcvNxt int64
	// ooo holds out-of-order segments: start → end byte offsets.
	ooo map[int64]int64

	// Delayed-ACK state.
	pendingPkts  int // data packets not yet acknowledged
	pendingBytes int // payload bytes covered by the pending ACK
	lastDataSent sim.Time
	ackTimer     *sim.Timer

	// ECN echo state.
	ceState    bool // DCTCP: CE value of the current run of packets
	eceLatched bool // RenoECN: latched until CWR

	stats ReceiverStats
}

// ReceiverStats counts receiver-side events.
type ReceiverStats struct {
	// Segments counts data packets received (including duplicates).
	Segments uint64
	// DupSegments counts segments at or below the cumulative ACK point.
	DupSegments uint64
	// OutOfOrder counts segments buffered beyond the ACK point.
	OutOfOrder uint64
	// AcksSent counts acknowledgements emitted.
	AcksSent uint64
	// CEMarked counts received data packets carrying CE.
	CEMarked uint64
}

// NewReceiver creates a receiver for flow on host, acknowledging to peer.
// It registers itself as the host's endpoint for the flow.
func NewReceiver(host *netsim.Host, flow netsim.FlowID, peer netsim.NodeID, cfg Config) *Receiver {
	r := &Receiver{
		engine: hostEngine(host),
		host:   host,
		flow:   flow,
		peer:   peer,
		cfg:    cfg.sanitize(),
		ooo:    make(map[int64]int64),
	}
	r.ackTimer = sim.NewTimer(r.engine, r.flushAck)
	host.Register(flow, r)
	return r
}

// Stats returns a copy of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Received returns the number of contiguous bytes delivered so far.
func (r *Receiver) Received() int64 { return r.rcvNxt }

// Deliver implements netsim.Endpoint for inbound data packets.
//
//dtlint:hotpath
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	if pkt.IsAck {
		return // receivers ignore stray ACKs
	}
	r.stats.Segments++
	if pkt.CE {
		r.stats.CEMarked++
	}

	// ECN echo state machines.
	switch {
	case r.cfg.Variant.dctcpLike():
		if pkt.CE != r.ceState {
			// CE state change: flush the pending ACK with the old
			// state so every ACK reports a uniform CE run.
			if r.pendingPkts > 0 {
				r.flushAck()
			}
			r.ceState = pkt.CE
		}
	case r.cfg.Variant == RenoECN:
		if pkt.CE {
			r.eceLatched = true
		}
		if pkt.CWR {
			r.eceLatched = false
		}
	}

	end := pkt.Seq + int64(pkt.PayloadLen)
	switch {
	case end <= r.rcvNxt:
		// Fully duplicate segment: re-ACK immediately so the sender's
		// dup-ACK machinery sees it.
		r.stats.DupSegments++
		r.pendingPkts++
		r.flushAck()
		return
	case pkt.Seq > r.rcvNxt:
		// Out of order: buffer and send an immediate dup ACK.
		r.stats.OutOfOrder++
		if old, ok := r.ooo[pkt.Seq]; !ok || end > old {
			r.ooo[pkt.Seq] = end
		}
		r.pendingPkts++
		r.flushAck()
		return
	}

	// In-order (possibly overlapping) segment: advance and drain the
	// out-of-order buffer to a fixpoint. Each outer iteration either
	// consumes an exact continuation or re-anchors/discards straddling
	// and obsolete ranges, so the loop terminates (the buffer shrinks).
	r.rcvNxt = end
	for {
		if e, ok := r.ooo[r.rcvNxt]; ok {
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt = e
			continue
		}
		// Discard obsolete ranges; re-anchor ranges that straddle
		// rcvNxt, taking the max end so two straddling ranges cannot
		// shrink each other (map iteration order is unspecified).
		changed := false
		//dtlint:allow maporder: every path keeps the max end per key, so the fixpoint is order-insensitive
		for s, e := range r.ooo {
			if e <= r.rcvNxt {
				delete(r.ooo, s)
			} else if s < r.rcvNxt {
				delete(r.ooo, s)
				if old, ok := r.ooo[r.rcvNxt]; !ok || e > old {
					r.ooo[r.rcvNxt] = e
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	r.pendingPkts++
	r.pendingBytes += pkt.PayloadLen
	r.lastDataSent = pkt.SentAt
	if r.pendingPkts >= r.cfg.AckEvery {
		r.flushAck()
		return
	}
	if !r.ackTimer.Armed() {
		r.ackTimer.Reset(r.cfg.DelayedAckTimeout)
	}
}

// flushAck emits the cumulative ACK covering everything pending.
//
//dtlint:hotpath
func (r *Receiver) flushAck() {
	ece := false
	switch {
	case r.cfg.Variant.dctcpLike():
		ece = r.ceState
	case r.cfg.Variant == RenoECN:
		ece = r.eceLatched
	}
	ack := r.host.AllocPacket()
	ack.Flow = r.flow
	ack.Dst = r.peer
	ack.Size = r.cfg.HeaderBytes
	ack.IsAck = true
	ack.Ack = r.rcvNxt
	ack.ECT = r.cfg.ECT()
	ack.ECE = ece
	ack.DelayedCount = r.pendingPkts
	ack.EchoSentAt = r.lastDataSent
	ack.SentAt = r.engine.Now()
	r.pendingPkts = 0
	r.pendingBytes = 0
	r.ackTimer.Stop()
	r.stats.AcksSent++
	r.host.Send(ack)
}

// hostEngine is the engine an endpoint on h must schedule on: the host's
// own engine, which is the shard engine under partitioned execution and
// the network's single engine otherwise. Kept as a helper so endpoint
// constructors take just the host.
func hostEngine(h *netsim.Host) *sim.Engine {
	return h.Engine()
}
