package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// deliverSegments feeds the receiver the given segment indices (each of
// size segLen) in order and returns the contiguous prefix it reports.
func deliverSegments(t testing.TB, order []int, segLen int) int64 {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	agg := n.AddHost("agg")
	w := n.AddHost("w")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: netsim.Gbps, Delay: time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(agg, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(w, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	w.Register(1, &ackRecorder{}) // absorb ACKs
	r := NewReceiver(agg, 1, w.ID(), DefaultConfig(Reno))
	for _, idx := range order {
		r.Deliver(&netsim.Packet{
			Flow:       1,
			Seq:        int64(idx * segLen),
			PayloadLen: segLen,
			Size:       segLen + 40,
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return r.Received()
}

// Property: any permutation of a contiguous segment range — including
// duplicates injected on top — reassembles to exactly the full length.
func TestPropertyReassemblyUnderPermutation(t *testing.T) {
	f := func(seed int64, nRaw, dupRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		order := rng.Perm(n)
		// Sprinkle duplicates.
		for d := 0; d < int(dupRaw%8); d++ {
			order = append(order, rng.Intn(n))
		}
		const segLen = 1460
		got := deliverSegments(t, order, segLen)
		return got == int64(n*segLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with one segment withheld, the contiguous prefix never
// crosses the hole, regardless of the order of everything else.
func TestPropertyReassemblyStopsAtHole(t *testing.T) {
	f := func(seed int64, nRaw, holeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		hole := int(holeRaw) % n
		var order []int
		for _, idx := range rng.Perm(n) {
			if idx != hole {
				order = append(order, idx)
			}
		}
		const segLen = 1460
		got := deliverSegments(t, order, segLen)
		return got == int64(hole*segLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Regression: two buffered ranges that both straddle the new rcvNxt must
// merge to the larger end and then drain, in any arrival order.
func TestStraddlingRangesMergeToMaxAndDrain(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	agg := n.AddHost("agg")
	w := n.AddHost("w")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: netsim.Gbps, Delay: time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(agg, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(w, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	w.Register(1, &ackRecorder{})
	r := NewReceiver(agg, 1, w.ID(), DefaultConfig(Reno))
	seg := func(seq, length int64) *netsim.Packet {
		return &netsim.Packet{Flow: 1, Seq: seq, PayloadLen: int(length), Size: int(length) + 40}
	}
	// Buffer [500,1200) and [700,2000): both beyond rcvNxt=0.
	r.Deliver(seg(500, 700))
	r.Deliver(seg(700, 1300))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Received() != 0 {
		t.Fatalf("premature advance to %d", r.Received())
	}
	// An in-order segment [0,800) straddles both buffered ranges: the
	// receiver must land on the max end, 2000.
	r.Deliver(seg(0, 800))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Received() != 2000 {
		t.Fatalf("Received = %d, want 2000 (max-end merge + drain)", r.Received())
	}
}
