package tcp

import "time"

// rttEstimator implements the Jacobson/Karels smoothed RTT and the
// standard RTO computation (RFC 6298 constants).
type rttEstimator struct {
	srtt    time.Duration
	rttvar  time.Duration
	sampled bool

	rtoMin, rtoMax, rtoInitial time.Duration
}

func newRTTEstimator(c Config) *rttEstimator {
	return &rttEstimator{rtoMin: c.RTOMin, rtoMax: c.RTOMax, rtoInitial: c.RTOInitial}
}

// sample feeds one round-trip measurement.
func (r *rttEstimator) sample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !r.sampled {
		r.sampled = true
		r.srtt = rtt
		r.rttvar = rtt / 2
		return
	}
	diff := r.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	r.rttvar += (diff - r.rttvar) / 4 // β = 1/4
	r.srtt += (rtt - r.srtt) / 8      // α = 1/8
}

// rto returns the current retransmission timeout, clamped to the
// configured bounds.
func (r *rttEstimator) rto() time.Duration {
	if !r.sampled {
		return r.clamp(r.rtoInitial)
	}
	return r.clamp(r.srtt + 4*r.rttvar)
}

// smoothed returns the smoothed RTT, or 0 before the first sample.
func (r *rttEstimator) smoothed() time.Duration { return r.srtt }

func (r *rttEstimator) clamp(d time.Duration) time.Duration {
	if d < r.rtoMin {
		return r.rtoMin
	}
	if r.rtoMax > 0 && d > r.rtoMax {
		return r.rtoMax
	}
	return d
}
