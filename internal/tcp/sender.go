package tcp

import (
	"math"
	"time"

	"dtdctcp/internal/invariant"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Sender is the data source of one flow. It implements window-based
// congestion control: slow start, congestion avoidance, NewReno fast
// retransmit/recovery, RTO with exponential backoff, and one of three ECN
// responses (none, RFC3168, DCTCP).
type Sender struct {
	engine *sim.Engine
	host   *netsim.Host
	flow   netsim.FlowID
	peer   netsim.NodeID
	cfg    Config

	// total is the number of payload bytes to transfer; 0 means a
	// long-lived flow that never completes.
	total int64
	// Deadline, when set, is the instant the transfer should finish by;
	// D2TCP uses it to compute the urgency factor d.
	Deadline sim.Time
	// OnComplete, when set, fires once when every byte is acknowledged.
	OnComplete func(now sim.Time)

	// Sequence state (bytes).
	sndUna int64
	sndNxt int64

	// Congestion control (bytes). cwnd moves in whole-MSS steps outside
	// slow start; caCount is the byte accumulator behind the step
	// (Linux's snd_cwnd_cnt).
	cwnd     float64
	ssthresh float64
	caCount  float64

	// NewReno recovery state.
	dupAcks    int
	inRecovery bool
	recover    int64

	// DCTCP state.
	alpha       float64
	ceWindowEnd int64 // α is updated when sndUna passes this point
	ackedBytes  int64 // bytes acked in the current observation window
	markedBytes int64 // of which carried ECE
	ecnReduced  bool  // window already reduced in this observation window
	cwrPending  bool  // set CWR on the next data packet (RFC3168)
	growHoldSeq int64 // no additive increase until sndUna passes this (CWR episode)
	cubic       cubicState
	// plus is the DCTCP+ slow-timer pacer (nil for other variants).
	plus         *plusPacer
	retxSeq      int64 // highest sequence retransmitted (Karn: skip RTT samples)
	retxValid    bool
	rtt          *rttEstimator
	rtoTimer     *sim.Timer
	rtoBackoff   int
	started      bool
	completed    bool
	completeTime sim.Time

	stats SenderStats
}

// SenderStats counts sender-side events.
type SenderStats struct {
	// SegmentsSent counts data transmissions, including retransmissions.
	SegmentsSent uint64
	// Retransmissions counts retransmitted segments.
	Retransmissions uint64
	// FastRecoveries counts entries into NewReno fast recovery.
	FastRecoveries uint64
	// Timeouts counts RTO firings.
	Timeouts uint64
	// AcksReceived counts ACK segments processed (the ECE-ratio
	// denominator).
	AcksReceived uint64
	// ECEAcks counts ACKs that carried an ECN echo.
	ECEAcks uint64
	// AlphaUpdates counts per-window α recomputations (DCTCP).
	AlphaUpdates uint64
	// ECNReductions counts window reductions triggered by marks alone.
	ECNReductions uint64
	// PacedSegments counts DCTCP+ transmissions released by the
	// slow-timer pacer (zero for other variants — the anti-vacuity
	// signal that pacing actually engaged).
	PacedSegments uint64
	// SlowTimerBackoffs counts DCTCP+ additive slow-timer growths.
	SlowTimerBackoffs uint64
}

// NewSender creates a sender for flow on host, transmitting totalBytes of
// payload to peer (0 = unlimited). It registers itself as the host's
// endpoint for the flow's ACK stream. Call Start to begin transmitting.
func NewSender(host *netsim.Host, flow netsim.FlowID, peer netsim.NodeID, totalBytes int64, cfg Config) *Sender {
	cfg = cfg.sanitize()
	s := &Sender{
		engine: hostEngine(host),
		host:   host,
		flow:   flow,
		peer:   peer,
		cfg:    cfg,
		total:  totalBytes,
		cwnd:   float64(cfg.InitialWindow * cfg.MSS),
		// Effectively unbounded until the first loss/mark event.
		ssthresh: math.MaxFloat64 / 4,
		alpha:    cfg.InitialAlpha,
		rtt:      newRTTEstimator(cfg),
	}
	s.rtoTimer = sim.NewTimer(s.engine, s.onRTO)
	if cfg.Variant == DCTCPPlus {
		s.plus = newPlusPacer(s, cfg)
	}
	host.Register(flow, s)
	return s
}

// Extend appends more payload bytes to a (possibly completed) transfer
// and resumes sending with the connection's congestion state intact —
// the persistent-connection behaviour of repeated request/response
// workloads. Extending an unlimited (totalBytes = 0) sender is a no-op.
func (s *Sender) Extend(moreBytes int64) {
	if s.total == 0 || moreBytes <= 0 {
		return
	}
	s.total += moreBytes
	if s.completed {
		s.completed = false
		s.completeTime = 0
	}
	if s.started {
		s.trySend()
	}
}

// Start begins transmission at the current instant.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.trySend()
}

// StartAt schedules transmission to begin at the given instant.
func (s *Sender) StartAt(at sim.Time) {
	s.engine.Schedule(at, s.Start)
}

// Alpha returns DCTCP's current congestion estimate α.
func (s *Sender) Alpha() float64 { return s.alpha }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// CwndPackets returns the congestion window in segments.
func (s *Sender) CwndPackets() float64 { return s.cwnd / float64(s.cfg.MSS) }

// Acked returns the number of acknowledged payload bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Completed reports whether the whole transfer has been acknowledged.
func (s *Sender) Completed() bool { return s.completed }

// CompletionTime returns when the transfer completed (valid once
// Completed reports true).
func (s *Sender) CompletionTime() sim.Time { return s.completeTime }

// SRTT exposes the smoothed RTT estimate.
func (s *Sender) SRTT() time.Duration { return s.rtt.smoothed() }

// Stats returns a copy of the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Flow returns the sender's flow ID.
func (s *Sender) Flow() netsim.FlowID { return s.flow }

// trySend transmits new segments while the congestion window allows.
//
//dtlint:hotpath
func (s *Sender) trySend() {
	for {
		if s.completed {
			return
		}
		if s.plus != nil && s.plus.armed {
			return
		}
		inFlight := float64(s.sndNxt - s.sndUna)
		if inFlight+float64(s.cfg.MSS) > s.cwnd+0.5 {
			return
		}
		payload := int64(s.cfg.MSS)
		if s.total > 0 {
			remaining := s.total - s.sndNxt
			if remaining <= 0 {
				return
			}
			if remaining < payload {
				payload = remaining
			}
		}
		if s.plus != nil && s.plus.slowTime > 0 {
			// DCTCP+ pacing: one segment per randomized slow-timer
			// delay instead of a window-limited burst.
			s.plus.timer.Reset(s.plus.delay())
			s.plus.armed = true
			return
		}
		s.transmit(s.sndNxt, int(payload))
		s.sndNxt += payload
	}
}

// transmit sends one segment starting at seq.
//
//dtlint:hotpath
func (s *Sender) transmit(seq int64, payload int) {
	pkt := s.host.AllocPacket()
	pkt.Flow = s.flow
	pkt.Dst = s.peer
	pkt.Size = payload + s.cfg.HeaderBytes
	pkt.Seq = seq
	pkt.PayloadLen = payload
	pkt.ECT = s.cfg.ECT()
	pkt.SentAt = s.engine.Now()
	if s.cwrPending {
		pkt.CWR = true
		s.cwrPending = false
	}
	s.stats.SegmentsSent++
	if !s.rtoTimer.Armed() {
		s.armRTO()
	}
	s.host.Send(pkt)
}

// Deliver implements netsim.Endpoint for the ACK stream.
//
//dtlint:hotpath
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if !pkt.IsAck || s.completed {
		return
	}
	s.stats.AcksReceived++
	if pkt.ECE {
		s.stats.ECEAcks++
	}

	switch {
	case pkt.Ack > s.sndUna:
		s.onNewAck(pkt)
	case pkt.Ack == s.sndUna:
		s.onDupAck(pkt)
	}
	// Stale ACK below sndUna: ignore.

	s.trySend()
}

//dtlint:hotpath
func (s *Sender) onNewAck(pkt *netsim.Packet) {
	ackedNow := pkt.Ack - s.sndUna
	s.sndUna = pkt.Ack
	s.dupAcks = 0
	s.rtoBackoff = 0

	// RTT sampling with Karn's rule: skip ACKs that could have been
	// triggered by a retransmission.
	if pkt.EchoSentAt > 0 && (!s.retxValid || pkt.Ack > s.retxSeq) {
		s.rtt.sample(time.Duration(s.engine.Now() - pkt.EchoSentAt))
	}

	// DCTCP accounting: every acked byte in the observation window is
	// classified by the ACK's ECE bit.
	if s.cfg.Variant.dctcpLike() {
		s.ackedBytes += ackedNow
		if pkt.ECE {
			s.markedBytes += ackedNow
		}
		if s.sndUna >= s.ceWindowEnd {
			s.updateAlphaWindow()
		}
	}

	if s.inRecovery {
		if s.sndUna >= s.recover {
			// Full ACK: leave recovery, deflate.
			s.inRecovery = false
			s.cwnd = s.ssthresh
		} else {
			// Partial ACK: retransmit the next hole, stay in
			// recovery (NewReno).
			s.retransmitHead()
			s.armRTO()
			return
		}
	} else if s.sndUna >= s.growHoldSeq && !pkt.ECE {
		// RFC 3168 §6.1.2: no window increase on an ACK that carries
		// ECE, nor during the round trip that follows an ECN-triggered
		// reduction. Without this, at small windows the per-window cut
		// and the per-ACK increase cancel exactly and the whole system
		// freezes into a fractional fixed point; with it, sustained
		// marking forces windows to keep shrinking until the queue
		// drains below the threshold — the start of the next
		// oscillation period the paper describes in Section III.
		s.grow(ackedNow)
	}

	// Classic ECN: halve at most once per RTT on ECE.
	if s.cfg.Variant == RenoECN && pkt.ECE && !s.ecnReduced {
		s.ecnReduced = true
		s.cwrPending = true
		s.ceWindowEnd = s.sndNxt // re-arm after one window
		s.growHoldSeq = s.sndNxt
		s.halve()
		s.stats.ECNReductions++
	}
	if s.cfg.Variant == RenoECN && s.sndUna >= s.ceWindowEnd {
		s.ecnReduced = false
	}

	if s.total > 0 && s.sndUna >= s.total {
		s.complete()
		return
	}
	if s.sndUna == s.sndNxt {
		s.rtoTimer.Stop()
	} else {
		s.armRTO()
	}
}

// grow applies slow start or congestion avoidance for ackedNow new bytes.
// Congestion avoidance uses the classic integer accumulator (Linux's
// snd_cwnd_cnt): the window steps up by one whole MSS after a full
// window's worth of bytes is acknowledged. The quantization matters: it is
// what keeps many small-window flows oscillating instead of settling into
// a fractional fixed point (the regime of the paper's Fig. 1 at N = 100).
//
//dtlint:hotpath
func (s *Sender) grow(ackedNow int64) {
	mss := float64(s.cfg.MSS)
	if s.cwnd < s.ssthresh {
		// Slow start: one MSS per acked MSS (byte counting).
		s.cwnd += math.Min(float64(ackedNow), mss)
		if s.cwnd > s.ssthresh {
			s.cwnd = s.ssthresh
		}
		return
	}
	if s.cfg.Variant == Cubic {
		segs := float64(ackedNow) / mss
		s.cubic.onAck(segs)
		cwndSegs := s.cwnd / mss
		target := s.cubic.target(s.engine.Now(), cwndSegs, s.rtt.smoothed().Seconds())
		// RFC 8312 §4.1: limit the per-RTT increase to 50%.
		if target > 1.5*cwndSegs {
			target = 1.5 * cwndSegs
		}
		if target > cwndSegs {
			// Standard cnt-based pacing of the cubic curve: the
			// window moves (target − cwnd)/cwnd per acked window.
			s.cwnd += (target - cwndSegs) / cwndSegs * segs * mss
		}
		return
	}
	s.caCount += float64(ackedNow)
	for s.caCount >= s.cwnd {
		s.caCount -= s.cwnd
		s.cwnd += mss
	}
}

//dtlint:hotpath
func (s *Sender) onDupAck(pkt *netsim.Packet) {
	// A dup ACK only counts when data is outstanding.
	if s.sndNxt == s.sndUna {
		return
	}
	s.dupAcks++
	if s.inRecovery {
		// Window inflation per extra dup ACK.
		s.cwnd += float64(s.cfg.MSS)
		return
	}
	if s.dupAcks == 3 {
		s.enterRecovery()
	}
}

func (s *Sender) enterRecovery() {
	s.stats.FastRecoveries++
	s.inRecovery = true
	s.recover = s.sndNxt
	mss := float64(s.cfg.MSS)
	if s.cfg.Variant == Cubic {
		s.ssthresh = s.cubic.onLoss(s.cwnd/mss) * mss
	} else {
		s.ssthresh = math.Max(s.cwnd/2, 2*mss)
	}
	s.cwnd = s.ssthresh + 3*mss
	s.retransmitHead()
	s.armRTO()
}

// retransmitHead resends the first unacknowledged segment and returns the
// payload length sent.
func (s *Sender) retransmitHead() int64 {
	payload := int64(s.cfg.MSS)
	if s.total > 0 {
		remaining := s.total - s.sndUna
		if remaining < payload {
			payload = remaining
		}
	}
	if payload <= 0 {
		return 0
	}
	s.stats.Retransmissions++
	if s.plus != nil {
		s.plus.congested = true
	}
	s.retxSeq = s.sndUna + payload
	s.retxValid = true
	s.transmit(s.sndUna, int(payload))
	return payload
}

// onRTO handles a retransmission timeout: collapse to one segment and
// resend from the cumulative ACK point.
func (s *Sender) onRTO() {
	if s.completed || s.sndUna == s.sndNxt {
		return
	}
	s.stats.Timeouts++
	if s.cfg.Variant == Cubic {
		s.ssthresh = s.cubic.onLoss(s.cwnd/float64(s.cfg.MSS)) * float64(s.cfg.MSS)
		s.cubic.reset()
	} else {
		s.ssthresh = math.Max(float64(s.sndNxt-s.sndUna)/2, float64(2*s.cfg.MSS))
	}
	s.cwnd = float64(s.cfg.MSS)
	s.inRecovery = false
	s.dupAcks = 0
	s.rtoBackoff++
	// Go-back-N: rewind and resend the head; sndNxt tracks the resent
	// segment so the window accounting stays consistent.
	s.sndNxt = s.sndUna + s.retransmitHead()
	s.armRTO()
}

//dtlint:hotpath
func (s *Sender) armRTO() {
	rto := s.rtt.rto()
	for i := 0; i < s.rtoBackoff; i++ {
		rto *= 2
		if rto >= s.cfg.RTOMax {
			rto = s.cfg.RTOMax
			break
		}
	}
	s.rtoTimer.Reset(rto)
}

// halve applies the multiplicative decrease of loss-free classic ECN.
func (s *Sender) halve() {
	s.ssthresh = math.Max(s.cwnd/2, float64(2*s.cfg.MSS))
	s.cwnd = s.ssthresh
}

// updateAlphaWindow closes one DCTCP observation window: update α from the
// marked fraction and apply at most one proportional reduction per window.
func (s *Sender) updateAlphaWindow() {
	if s.ackedBytes > 0 {
		frac := float64(s.markedBytes) / float64(s.ackedBytes)
		s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*frac
		s.stats.AlphaUpdates++
		if invariant.Enabled {
			invariant.Assert(s.alpha >= 0 && s.alpha <= 1,
				"tcp: alpha %g outside [0,1] (frac=%g g=%g)", s.alpha, frac, s.cfg.G)
			invariant.Assert(s.markedBytes <= s.ackedBytes,
				"tcp: marked bytes %d exceed acked bytes %d", s.markedBytes, s.ackedBytes)
		}
		if s.markedBytes > 0 {
			// cwnd ← cwnd·(1 − p/2), floored to a whole segment
			// count and bounded below by one segment, matching the
			// integer window arithmetic of real implementations.
			// For DCTCP the penalty p is α itself; for D2TCP it is
			// α^d with d the deadline urgency.
			penalty := s.alpha
			if s.cfg.Variant == D2TCP {
				penalty = math.Pow(s.alpha, s.urgency())
			}
			mss := float64(s.cfg.MSS)
			cut := math.Floor(s.cwnd * (1 - penalty/2) / mss)
			s.cwnd = math.Max(cut*mss, mss)
			s.ssthresh = s.cwnd
			s.caCount = 0
			s.growHoldSeq = s.sndNxt
			s.stats.ECNReductions++
		}
	}
	// DCTCP+: one slow-timer transition per observation window, after
	// the window cut so the floor test sees the post-cut cwnd.
	if s.plus != nil {
		congested := s.markedBytes > 0 || s.plus.congested
		atFloor := s.cwnd <= float64(2*s.cfg.MSS)+0.5
		was := s.plus.slowTime
		s.plus.tick(s.cfg, congested, atFloor)
		if s.plus.slowTime > was {
			s.stats.SlowTimerBackoffs++
		}
	}
	s.ackedBytes = 0
	s.markedBytes = 0
	s.ceWindowEnd = s.sndNxt
}

// urgency computes D2TCP's deadline-imminence factor d = Tc/Δ, clamped to
// [0.5, 2]: Tc is the time the remaining bytes need at the current rate
// (cwnd per RTT) and Δ the time left until the deadline. A tight deadline
// (Tc > Δ) gives d > 1, which shrinks the penalty α^d and so backs off
// more gently; ample slack gives d < 1 and a harsher backoff. Flows with
// no deadline, no remaining data, or no RTT estimate behave like DCTCP
// (d = 1); flows already past their deadline use the maximum urgency.
func (s *Sender) urgency() float64 {
	if s.Deadline == sim.TimeZero || s.total == 0 {
		return 1
	}
	remaining := float64(s.total - s.sndUna)
	if remaining <= 0 {
		return 1
	}
	srtt := s.rtt.smoothed()
	if srtt <= 0 || s.cwnd <= 0 {
		return 1
	}
	rate := s.cwnd / srtt.Seconds() // bytes per second
	tc := remaining / rate
	deltaLeft := (s.Deadline - s.engine.Now()).Duration().Seconds()
	if deltaLeft <= 0 {
		return 2 // past deadline: maximum urgency, gentlest backoff
	}
	d := tc / deltaLeft
	if d < 0.5 {
		d = 0.5
	} else if d > 2 {
		d = 2
	}
	return d
}

func (s *Sender) complete() {
	s.completed = true
	s.completeTime = s.engine.Now()
	s.rtoTimer.Stop()
	if s.plus != nil {
		s.plus.timer.Stop()
		s.plus.armed = false
	}
	if s.OnComplete != nil {
		s.OnComplete(s.completeTime)
	}
}
