package tcp

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func TestExtendResumesCompletedTransfer(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	const chunk = 64 << 10
	s, r := d.pair(0, chunk, DefaultConfig(Reno))
	completions := 0
	s.OnComplete = func(sim.Time) { completions++ }
	s.Start()
	if err := d.engine.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if completions != 1 || !s.Completed() {
		t.Fatalf("first chunk incomplete (completions=%d)", completions)
	}
	cwndBefore := s.Cwnd()

	s.Extend(chunk)
	if s.Completed() {
		t.Fatal("Extend should clear completion")
	}
	if s.Cwnd() != cwndBefore {
		t.Fatal("Extend must preserve congestion state")
	}
	if err := d.engine.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if completions != 2 {
		t.Fatalf("second chunk incomplete (completions=%d)", completions)
	}
	if r.Received() != 2*chunk {
		t.Fatalf("received %d, want %d", r.Received(), 2*chunk)
	}
}

func TestExtendNoopCases(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	unlimited, _ := d.pair(0, 0, DefaultConfig(Reno))
	unlimited.Extend(1000) // unlimited flows ignore Extend
	if unlimited.Completed() {
		t.Fatal("unlimited flow cannot complete")
	}
	d2 := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	bounded, _ := d2.pair(0, 1000, DefaultConfig(Reno))
	bounded.Extend(-5) // non-positive is ignored
	bounded.Start()
	if err := d2.engine.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if bounded.Acked() != 1000 {
		t.Fatalf("acked %d, want exactly the original 1000", bounded.Acked())
	}
}

func TestRTOBackoffDoublesUnderPersistentBlackout(t *testing.T) {
	// Everything is dropped for 2 s: the sender must keep retrying with
	// exponentially growing timeouts and survive to deliver afterwards.
	drop := &dropDuring{until: sim.FromDuration(1900 * time.Millisecond)}
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, drop)
	drop.engine = d.engine
	const total = 20 * 1460
	s, r := d.pair(0, total, DefaultConfig(Reno))
	s.Start()
	if err := d.engine.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("incomplete after long blackout: acked=%d", s.Acked())
	}
	// RTOmin 200 ms with doubling covers 1.9 s in ≈4 timeouts
	// (200+400+800+1600); more than 7 would mean backoff is broken.
	if got := s.Stats().Timeouts; got < 3 || got > 7 {
		t.Fatalf("timeouts = %d, want 3..7 under exponential backoff", got)
	}
}

func TestStartIsIdempotent(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	s, _ := d.pair(0, 10*1460, DefaultConfig(Reno))
	s.Start()
	sent := s.Stats().SegmentsSent
	s.Start() // second call must not re-burst
	if s.Stats().SegmentsSent != sent {
		t.Fatal("double Start re-sent data")
	}
}

func TestCWRClearsLatchedECE(t *testing.T) {
	// RenoECN end-to-end: after the sender reduces and sets CWR, the
	// receiver must stop echoing ECE until the next mark, so the sender
	// reduces once per congestion episode rather than forever.
	pol := aqm.NewSingleThresholdPackets(15, 1500)
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	s, _ := d.pair(0, 0, DefaultConfig(RenoECN))
	s.Start()
	if err := d.engine.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ECNReductions == 0 {
		t.Fatal("no reductions")
	}
	// If ECE never cleared, every ACK past the first mark would carry it
	// and the flow would be pinned at minimum window with ~zero
	// throughput. Sustained goodput implies the CWR handshake works.
	capacity := (1 * netsim.Gbps).BytesPerSecond() * 0.1
	if float64(s.Acked()) < 0.5*capacity {
		t.Fatalf("goodput collapsed (%d bytes): ECE latch likely stuck", s.Acked())
	}
}

func TestDelayedAckTimerFlushesTail(t *testing.T) {
	// With AckEvery=2 and an odd number of segments, the final segment's
	// ACK is released by the delayed-ACK timer; the transfer must still
	// complete promptly (well under RTOmin).
	cfg := DefaultConfig(Reno)
	cfg.AckEvery = 2
	cfg.DelayedAckTimeout = 400 * time.Microsecond
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, nil)
	const total = 3 * 1460 // odd number of segments
	s, _ := d.pair(0, total, cfg)
	s.Start()
	if err := d.engine.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() {
		t.Fatal("transfer incomplete")
	}
	if s.Stats().Timeouts != 0 {
		t.Fatal("delayed-ack tail caused an RTO")
	}
	if got := s.CompletionTime().Duration(); got > 5*time.Millisecond {
		t.Fatalf("completion %v: tail ACK not flushed by the delack timer", got)
	}
}

func TestSRTTConvergesToPathRTT(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 4000, nil)
	s, _ := d.pair(0, 0, DefaultConfig(Reno))
	s.Start()
	if err := d.engine.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Base RTT 100 µs plus queueing; srtt must be in a sane band.
	srtt := s.SRTT()
	if srtt < 100*time.Microsecond || srtt > 100*time.Millisecond {
		t.Fatalf("srtt = %v", srtt)
	}
}

func TestAlphaDecaysWhenMarkingStops(t *testing.T) {
	// Start with a marking bottleneck; α rises. Then the flow completes
	// and a fresh unmarked flow's α should decay from InitialAlpha as
	// clean windows accumulate.
	pol := aqm.NewSingleThresholdPackets(5, 1500)
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	cfg := DefaultConfig(DCTCP)
	s, _ := d.pair(0, 0, cfg)
	s.Start()
	if err := d.engine.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Alpha() < 0.05 {
		t.Fatalf("α = %v under persistent marking, want elevated", s.Alpha())
	}

	// Fresh dumbbell with a threshold too high to ever mark, and a small
	// buffer so the window — and hence the α-update interval — stays
	// short.
	d2 := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 30,
		aqm.NewSingleThresholdPackets(100000, 1500))
	s2, _ := d2.pair(0, 0, cfg)
	s2.Start()
	// α decays by (1−g) once per window of data; with a large window a
	// window lasts several ms, so give it time for ~60 updates.
	if err := d2.engine.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s2.Alpha() > 0.1 {
		t.Fatalf("α = %v with no marking, want decayed toward 0", s2.Alpha())
	}
}
