package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// dumbbell builds nSenders hosts → switch → one receiver host. The
// bottleneck is the switch→receiver port, which gets the policy and
// bufferPkts. All links share rate and one-way delay.
type dumbbell struct {
	engine  *sim.Engine
	net     *netsim.Network
	senders []*netsim.Host
	rcvHost *netsim.Host
	sw      *netsim.Switch
	bneck   *netsim.Port
}

func newDumbbell(t testing.TB, nSenders int, rate netsim.Rate, delay time.Duration,
	bufferPkts int, policy aqm.Policy) *dumbbell {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	sw := n.AddSwitch("sw")
	rcv := n.AddHost("rcv")
	pkt := 1500
	// Access links run 10× faster than the bottleneck so queueing — and
	// therefore marking — happens at the instrumented switch port.
	plain := netsim.PortConfig{Rate: 10 * rate, Delay: delay, Buffer: 4000 * pkt}
	bneckCfg := netsim.PortConfig{Rate: rate, Delay: delay, Buffer: bufferPkts * pkt, Policy: policy}
	if err := n.Connect(rcv, sw, plain, bneckCfg); err != nil {
		t.Fatal(err)
	}
	d := &dumbbell{engine: e, net: n, rcvHost: rcv, sw: sw}
	for i := 0; i < nSenders; i++ {
		h := n.AddHost("snd")
		if err := n.Connect(h, sw, plain, plain); err != nil {
			t.Fatal(err)
		}
		d.senders = append(d.senders, h)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	d.bneck = sw.PortTo(rcv.ID())
	return d
}

// pair creates sender/receiver endpoints for flow i on the dumbbell.
func (d *dumbbell) pair(i int, totalBytes int64, cfg Config) (*Sender, *Receiver) {
	flow := netsim.FlowID(i)
	s := NewSender(d.senders[i], flow, d.rcvHost.ID(), totalBytes, cfg)
	r := NewReceiver(d.rcvHost, flow, d.senders[i].ID(), cfg)
	return s, r
}

func TestVariantString(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{Reno, "reno"},
		{RenoECN, "reno-ecn"},
		{DCTCP, "dctcp"},
		{Variant(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{}.sanitize()
	if c.Variant != DCTCP || c.MSS != 1460 || c.AckEvery != 1 {
		t.Fatalf("sanitized zero config = %+v", c)
	}
	if c.PacketSize() != 1500 {
		t.Fatalf("PacketSize = %d", c.PacketSize())
	}
	if !c.ECT() {
		t.Fatal("DCTCP must be ECT")
	}
	if DefaultConfig(Reno).ECT() {
		t.Fatal("Reno must not be ECT")
	}
}

func TestRTTEstimator(t *testing.T) {
	r := newRTTEstimator(Config{RTOMin: time.Millisecond, RTOInitial: 3 * time.Second, RTOMax: time.Minute}.sanitize())
	if got := r.rto(); got != 200*time.Millisecond {
		// sanitize keeps explicit values; RTOInitial was 3s, RTOMin 1ms.
		if got != 3*time.Second {
			t.Fatalf("initial rto = %v", got)
		}
	}
	r.sample(100 * time.Microsecond)
	if r.smoothed() != 100*time.Microsecond {
		t.Fatalf("srtt after first sample = %v", r.smoothed())
	}
	// RTO = srtt + 4·rttvar = 100µs + 4·50µs = 300µs → clamped to min 1ms.
	if got := r.rto(); got != time.Millisecond {
		t.Fatalf("rto = %v, want clamp at 1ms", got)
	}
	for i := 0; i < 100; i++ {
		r.sample(100 * time.Microsecond)
	}
	if r.smoothed() != 100*time.Microsecond {
		t.Fatalf("converged srtt = %v", r.smoothed())
	}
	r.sample(0) // ignored
}

func TestBulkTransferCompletesCleanPath(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 1000, nil)
	const total = 1 << 20 // 1 MB
	s, r := d.pair(0, total, DefaultConfig(Reno))
	var done sim.Time
	s.OnComplete = func(now sim.Time) { done = now }
	s.Start()
	if err := d.engine.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() {
		t.Fatalf("transfer incomplete: acked %d of %d", s.Acked(), int64(total))
	}
	if r.Received() != total {
		t.Fatalf("receiver got %d bytes, want %d", r.Received(), total)
	}
	if done == 0 || done != s.CompletionTime() {
		t.Fatal("completion callback/time inconsistent")
	}
	if s.Stats().Retransmissions != 0 {
		t.Fatalf("clean path produced %d retransmissions", s.Stats().Retransmissions)
	}
	// 1 MB at 1 Gbps is ≥ 8 ms; with slow start it must land well under
	// 100 ms on a 100 µs RTT.
	if done.Duration() > 100*time.Millisecond {
		t.Fatalf("completion took %v", done.Duration())
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	d := newDumbbell(t, 1, 10*netsim.Gbps, 25*time.Microsecond, 4000, nil)
	s, _ := d.pair(0, 0, DefaultConfig(Reno))
	s.Start()
	// RTT ≈ 100 µs. After k RTTs of slow start cwnd ≈ IW·2^k.
	if err := d.engine.RunFor(450 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	got := s.CwndPackets()
	if got < 20 || got > 100 {
		t.Fatalf("cwnd after ~4 RTTs of slow start = %.1f segments, want ~3·2⁴", got)
	}
}

func TestFastRetransmitRecoversFromSingleLoss(t *testing.T) {
	drop := &dropNth{n: 20}
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 1000, drop)
	const total = 256 * 1460
	s, r := d.pair(0, total, DefaultConfig(Reno))
	s.Start()
	if err := d.engine.RunFor(1 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("transfer incomplete after loss: acked=%d", s.Acked())
	}
	st := s.Stats()
	if st.FastRecoveries != 1 {
		t.Fatalf("FastRecoveries = %d, want 1", st.FastRecoveries)
	}
	if st.Timeouts != 0 {
		t.Fatalf("Timeouts = %d, want 0 (loss should be repaired by fast retransmit)", st.Timeouts)
	}
	// Completion must not have waited for the 200 ms RTO.
	if s.CompletionTime().Duration() > 150*time.Millisecond {
		t.Fatalf("completion %v suggests an RTO", s.CompletionTime().Duration())
	}
}

func TestRTORecoversFromTotalBlackout(t *testing.T) {
	// Drop everything for the first 5 ms: the initial window and all
	// fast-retransmit attempts die, forcing recovery through the RTO.
	drop := &dropDuring{until: sim.FromDuration(5 * time.Millisecond)}
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 1000, drop)
	drop.engine = d.engine
	const total = 200 * 1460
	s, r := d.pair(0, total, DefaultConfig(Reno))
	s.Start()
	if err := d.engine.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("transfer incomplete after blackout: acked=%d", s.Acked())
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("expected at least one RTO")
	}
}

// TestRTORecoversFromLinkDownOutage is the chaos-layer variant of the
// blackout test: instead of an AQM that eats packets, the bottleneck
// port itself goes down mid-transfer (flushing its queue, cutting the
// in-flight serialization, dropping arrivals), as a chaos link-down
// event does. With nothing left in flight there are no duplicate ACKs,
// so recovery must come from the retransmission timer.
func TestRTORecoversFromLinkDownOutage(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 1000, nil)
	const total = 400 * 1460
	s, r := d.pair(0, total, DefaultConfig(DCTCP))
	s.Start()
	d.engine.Schedule(sim.FromDuration(time.Millisecond), func() {
		d.bneck.SetDown(true, true)
	})
	d.engine.Schedule(sim.FromDuration(6*time.Millisecond), func() {
		d.bneck.SetDown(false, false)
	})
	if err := d.engine.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("transfer incomplete after link-down outage: acked=%d of %d", s.Acked(), int64(total))
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("expected RTO-driven recovery from the outage")
	}
	if d.bneck.Stats().DroppedLinkDown == 0 {
		t.Fatal("outage dropped nothing; the cut missed the transfer")
	}
	// The sender must have kept its window useful after recovery: the
	// whole transfer is ~5 ms of wire time, so even with one RTO backoff
	// it completes well inside a second.
	if s.CompletionTime().Duration() > time.Second {
		t.Fatalf("completion %v suggests repeated RTO backoff without progress", s.CompletionTime().Duration())
	}
}

func TestDCTCPAlphaTracksMarkingAndQueueStaysNearK(t *testing.T) {
	const kPkts = 40
	pol := aqm.NewSingleThresholdPackets(kPkts, 1500)
	d := newDumbbell(t, 2, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	rec := netsim.NewQueueRecorder(1500, 0)
	rec.WarmupUntil = sim.FromDuration(50 * time.Millisecond)
	d.bneck.SetMonitor(rec)
	cfg := DefaultConfig(DCTCP)
	var snds []*Sender
	for i := 0; i < 2; i++ {
		s, _ := d.pair(i, 0, cfg)
		s.Start()
		snds = append(snds, s)
	}
	if err := d.engine.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Finish(d.engine.Now())
	for _, s := range snds {
		if s.Stats().AlphaUpdates == 0 {
			t.Fatal("α never updated")
		}
		if a := s.Alpha(); a <= 0 || a >= 0.9 {
			t.Fatalf("steady-state α = %v, want small positive", a)
		}
	}
	mean := rec.Mean()
	if mean < 5 || mean > 80 {
		t.Fatalf("mean queue %v packets, want near K=%d", mean, kPkts)
	}
	// DCTCP's whole point: full throughput with bounded queue, no drops.
	if d.bneck.Stats().DroppedOverflow != 0 {
		t.Fatalf("bottleneck dropped %d packets", d.bneck.Stats().DroppedOverflow)
	}
	if d.bneck.Stats().Marked == 0 {
		t.Fatal("no CE marks at bottleneck")
	}
}

func TestDCTCPKeepsHighUtilization(t *testing.T) {
	pol := aqm.NewSingleThresholdPackets(40, 1500)
	d := newDumbbell(t, 2, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	cfg := DefaultConfig(DCTCP)
	for i := 0; i < 2; i++ {
		s, _ := d.pair(i, 0, cfg)
		s.Start()
	}
	run := 300 * time.Millisecond
	if err := d.engine.RunFor(run); err != nil {
		t.Fatal(err)
	}
	sent := float64(d.bneck.Stats().BytesSent)
	capacity := (1 * netsim.Gbps).BytesPerSecond() * run.Seconds()
	util := sent / capacity
	if util < 0.90 {
		t.Fatalf("bottleneck utilization %.2f, want ≥ 0.90", util)
	}
}

func TestRenoFillsBufferDCTCPDoesNot(t *testing.T) {
	run := func(cfg Config, pol aqm.Policy) float64 {
		d := newDumbbell(t, 2, 1*netsim.Gbps, 25*time.Microsecond, 200, pol)
		rec := netsim.NewQueueRecorder(1500, 0)
		rec.WarmupUntil = sim.FromDuration(50 * time.Millisecond)
		d.bneck.SetMonitor(rec)
		for i := 0; i < 2; i++ {
			s, _ := d.pair(i, 0, cfg)
			s.Start()
		}
		if err := d.engine.RunFor(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		rec.Finish(d.engine.Now())
		return rec.Mean()
	}
	reno := run(DefaultConfig(Reno), nil)
	dctcp := run(DefaultConfig(DCTCP), aqm.NewSingleThresholdPackets(40, 1500))
	if dctcp >= reno {
		t.Fatalf("mean queue: dctcp=%.1f reno=%.1f; DCTCP should be far smaller", dctcp, reno)
	}
	if reno < 80 {
		t.Fatalf("reno mean queue %.1f packets: loss-driven TCP should ride near the 200-packet buffer", reno)
	}
}

func TestRenoECNHalvesOnMarkAndSetsCWR(t *testing.T) {
	pol := aqm.NewSingleThresholdPackets(20, 1500)
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	s, _ := d.pair(0, 0, DefaultConfig(RenoECN))
	s.Start()
	if err := d.engine.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ECEAcks == 0 {
		t.Fatal("no ECE echoes received")
	}
	if st.ECNReductions == 0 {
		t.Fatal("no ECN-driven reductions")
	}
	// Loss-free operation: ECN should prevent overflow entirely here.
	if d.bneck.Stats().DroppedOverflow != 0 {
		t.Fatalf("drops despite ECN: %d", d.bneck.Stats().DroppedOverflow)
	}
	// The reductions must be once-per-window, not once-per-ACK: with a
	// ~100µs RTT and 200ms runtime there are ≤ 2000 windows.
	if st.ECNReductions > 2000 {
		t.Fatalf("ECNReductions = %d: reacting more than once per RTT", st.ECNReductions)
	}
}

func TestDelayedAckTransferCompletes(t *testing.T) {
	cfg := DefaultConfig(DCTCP)
	cfg.AckEvery = 2
	pol := aqm.NewSingleThresholdPackets(40, 1500)
	d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	const total = 512 * 1460
	s, r := d.pair(0, total, cfg)
	s.Start()
	if err := d.engine.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !s.Completed() || r.Received() != total {
		t.Fatalf("delayed-ack transfer incomplete: acked=%d", s.Acked())
	}
	// Delayed ACKs must roughly halve the ACK count.
	rs := r.Stats()
	if rs.AcksSent >= rs.Segments {
		t.Fatalf("acks=%d segments=%d: delayed ACKs not coalescing", rs.AcksSent, rs.Segments)
	}
}

func TestDCTCPEchoFlushesOnCEChange(t *testing.T) {
	// Directly exercise the receiver state machine without a network: CE
	// state changes must flush the pending delayed ACK with the old state.
	d := newDumbbell(t, 1, 1*netsim.Gbps, time.Microsecond, 100, nil)
	cfg := DefaultConfig(DCTCP)
	cfg.AckEvery = 2
	// The sender endpoint just records ACKs.
	rec := &ackRecorder{}
	d.senders[0].Register(9, rec)
	r := NewReceiver(d.rcvHost, 9, d.senders[0].ID(), cfg)

	deliver := func(seq int64, ce bool) {
		r.Deliver(&netsim.Packet{
			Flow: 9, Dst: d.rcvHost.ID(), Seq: seq, PayloadLen: 1460,
			Size: 1500, ECT: true, CE: ce,
		})
	}
	deliver(0, false)   // pending (1 of 2)
	deliver(1460, true) // CE flips: flush ACK(ECE=false) for first, then pend
	deliver(2920, true) // second CE packet completes the delayed pair → ACK(ECE=true)
	if err := d.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.acks) != 2 {
		t.Fatalf("got %d acks, want 2 (flush on CE change + delayed pair)", len(rec.acks))
	}
	if rec.acks[0].ECE || rec.acks[0].Ack != 1460 {
		t.Fatalf("first ack = %+v, want ECE=false ack=1460", rec.acks[0])
	}
	if !rec.acks[1].ECE || rec.acks[1].Ack != 4380 {
		t.Fatalf("second ack = %+v, want ECE=true ack=4380", rec.acks[1])
	}
}

func TestReceiverReassemblesOutOfOrder(t *testing.T) {
	d := newDumbbell(t, 1, 1*netsim.Gbps, time.Microsecond, 100, nil)
	rec := &ackRecorder{}
	d.senders[0].Register(9, rec)
	r := NewReceiver(d.rcvHost, 9, d.senders[0].ID(), DefaultConfig(Reno))
	seg := func(seq int64) *netsim.Packet {
		return &netsim.Packet{Flow: 9, Seq: seq, PayloadLen: 1460, Size: 1500}
	}
	r.Deliver(seg(0))
	r.Deliver(seg(2920)) // hole at 1460
	r.Deliver(seg(4380))
	if r.Received() != 1460 {
		t.Fatalf("Received = %d, want 1460 before hole filled", r.Received())
	}
	r.Deliver(seg(1460)) // fill the hole
	if r.Received() != 5840 {
		t.Fatalf("Received = %d, want 5840 after hole filled", r.Received())
	}
	if r.Stats().OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", r.Stats().OutOfOrder)
	}
	// Duplicate delivery re-ACKs but does not regress.
	r.Deliver(seg(0))
	if r.Received() != 5840 {
		t.Fatal("duplicate segment regressed rcvNxt")
	}
	if r.Stats().DupSegments != 1 {
		t.Fatalf("DupSegments = %d, want 1", r.Stats().DupSegments)
	}
}

func TestManyFlowsShareFairly(t *testing.T) {
	const n = 4
	pol := aqm.NewSingleThresholdPackets(40, 1500)
	d := newDumbbell(t, n, 1*netsim.Gbps, 25*time.Microsecond, 400, pol)
	var snds []*Sender
	for i := 0; i < n; i++ {
		s, _ := d.pair(i, 0, DefaultConfig(DCTCP))
		s.Start()
		snds = append(snds, s)
	}
	if err := d.engine.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var tot int64
	mins, maxs := int64(1<<62), int64(0)
	for _, s := range snds {
		a := s.Acked()
		tot += a
		if a < mins {
			mins = a
		}
		if a > maxs {
			maxs = a
		}
	}
	if tot == 0 {
		t.Fatal("no progress")
	}
	if float64(mins) < 0.3*float64(maxs) {
		t.Fatalf("unfair sharing: min=%d max=%d", mins, maxs)
	}
}

// Property: under arbitrary periodic loss, the transfer completes and the
// receiver's contiguous prefix equals the transfer size exactly.
func TestPropertyReliabilityUnderLoss(t *testing.T) {
	f := func(period uint8, sizeSeg uint8) bool {
		p := int(period%37) + 13 // drop every p-th packet, p ∈ [13,49]
		segs := int(sizeSeg%100) + 20
		total := int64(segs) * 1460
		drop := &dropEvery{period: p}
		d := newDumbbell(t, 1, 1*netsim.Gbps, 25*time.Microsecond, 1000, drop)
		s, r := d.pair(0, total, DefaultConfig(Reno))
		s.Start()
		if err := d.engine.RunFor(30 * time.Second); err != nil {
			return false
		}
		return s.Completed() && r.Received() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- test doubles -------------------------------------------------------

type ackRecorder struct{ acks []*netsim.Packet }

// Deliver copies the packet: delivered packets may be pooled and are
// recycled by the network as soon as Deliver returns.
func (a *ackRecorder) Deliver(p *netsim.Packet) {
	cp := *p
	a.acks = append(a.acks, &cp)
}

// dropNth drops exactly the n-th data arrival (1-based), then accepts.
type dropNth struct {
	n     int
	count int
}

func (d *dropNth) Name() string { return "drop-nth" }
func (d *dropNth) OnArrival(sim.Time, int, int) aqm.Verdict {
	d.count++
	if d.count == d.n {
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *dropNth) OnDeparture(sim.Time, int) {}
func (d *dropNth) Reset()                    { d.count = 0 }

// dropDuring drops every arrival before the given virtual instant.
type dropDuring struct {
	engine *sim.Engine
	until  sim.Time
}

func (d *dropDuring) Name() string { return "drop-during" }
func (d *dropDuring) OnArrival(now sim.Time, _, _ int) aqm.Verdict {
	if now < d.until {
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *dropDuring) OnDeparture(sim.Time, int) {}
func (d *dropDuring) Reset()                    {}

// dropEvery drops every period-th arrival.
type dropEvery struct {
	period int
	count  int
}

func (d *dropEvery) Name() string { return "drop-every" }
func (d *dropEvery) OnArrival(sim.Time, int, int) aqm.Verdict {
	d.count++
	if d.count%d.period == 0 {
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *dropEvery) OnDeparture(sim.Time, int) {}
func (d *dropEvery) Reset()                    { d.count = 0 }
