package topo

import (
	"fmt"

	"dtdctcp/internal/netsim"
)

// FatTree wires a k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge
// and k/2 aggregation switches, (k/2)² core switches, and k/2 hosts per
// edge switch — k³/4 hosts total. Aggregation switch i of every pod
// connects to core switches [i·k/2, (i+1)·k/2). With equal link rates
// the fabric is non-oversubscribed and every inter-pod host pair has
// (k/2)² equal-cost paths, resolved per flow by the deterministic ECMP
// hash.
//
// The network must be empty; k must be even and at least 2.
func FatTree(nw *netsim.Network, k int, cfg Config) (*Fabric, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity k = %d must be even and >= 2", k)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := emptyNetwork(nw); err != nil {
		return nil, err
	}
	f := &Fabric{Net: nw, Kind: "fattree", cfg: cfg}
	half := k / 2
	rng := nw.Engine().Rand()

	// Tiers in creation order: per-pod edge, per-pod aggregation, core.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			f.Edge = append(f.Edge, nw.AddSwitch(fmt.Sprintf("p%de%d", p, e)))
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			f.Agg = append(f.Agg, nw.AddSwitch(fmt.Sprintf("p%da%d", p, a)))
		}
	}
	for c := 0; c < half*half; c++ {
		f.Core = append(f.Core, nw.AddSwitch(fmt.Sprintf("c%d", c)))
	}

	// Hosts hang off the edge tier, pod-major.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			edge := f.Edge[p*half+e]
			for h := 0; h < half; h++ {
				host := nw.AddHost(fmt.Sprintf("p%dh%d", p, e*half+h))
				f.Hosts = append(f.Hosts, host)
				if err := nw.Connect(host, edge, cfg.hostUp(), cfg.hostDown(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Intra-pod full bipartite edge ↔ aggregation mesh.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if err := nw.Connect(f.Edge[p*half+e], f.Agg[p*half+a], cfg.fabric(rng), cfg.fabric(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Aggregation ↔ core: agg i of each pod owns core group i.
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				if err := nw.Connect(f.Agg[p*half+a], f.Core[a*half+j], cfg.fabric(rng), cfg.fabric(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := f.routes(); err != nil {
		return nil, err
	}
	return f, nil
}
