package topo

import (
	"fmt"

	"dtdctcp/internal/netsim"
)

// LeafSpine wires a two-tier Clos: every leaf switch connects to every
// spine switch, and hostsPerLeaf hosts hang off each leaf. Any two hosts
// on different leaves have one equal-cost path per spine, resolved per
// flow by the deterministic ECMP hash. The oversubscription ratio is
// (hostsPerLeaf · host rate) : (spines · fabric rate) per leaf.
//
// The network must be empty; leaves, spines, and hostsPerLeaf must be
// positive, with at least two hosts in total.
func LeafSpine(nw *netsim.Network, leaves, spines, hostsPerLeaf int, cfg Config) (*Fabric, error) {
	switch {
	case leaves < 1 || spines < 1 || hostsPerLeaf < 1:
		return nil, fmt.Errorf("topo: leaf-spine needs positive tier sizes (got %d×%d, %d hosts/leaf)",
			leaves, spines, hostsPerLeaf)
	case leaves*hostsPerLeaf < 2:
		return nil, fmt.Errorf("topo: leaf-spine needs at least 2 hosts")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := emptyNetwork(nw); err != nil {
		return nil, err
	}
	f := &Fabric{Net: nw, Kind: "leafspine", cfg: cfg}
	rng := nw.Engine().Rand()

	for l := 0; l < leaves; l++ {
		f.Edge = append(f.Edge, nw.AddSwitch(fmt.Sprintf("leaf%d", l)))
	}
	for s := 0; s < spines; s++ {
		f.Core = append(f.Core, nw.AddSwitch(fmt.Sprintf("spine%d", s)))
	}
	for l := 0; l < leaves; l++ {
		for h := 0; h < hostsPerLeaf; h++ {
			host := nw.AddHost(fmt.Sprintf("l%dh%d", l, h))
			f.Hosts = append(f.Hosts, host)
			if err := nw.Connect(host, f.Edge[l], cfg.hostUp(), cfg.hostDown(rng)); err != nil {
				return nil, err
			}
		}
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			if err := nw.Connect(f.Edge[l], f.Core[s], cfg.fabric(rng), cfg.fabric(rng)); err != nil {
				return nil, err
			}
		}
	}
	if err := f.routes(); err != nil {
		return nil, err
	}
	return f, nil
}
