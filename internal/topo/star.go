package topo

import (
	"fmt"

	"dtdctcp/internal/netsim"
)

// StarConfig describes the classic n-senders-one-receiver star the
// workload and shard tests share: senders and the receiver hang off one
// switch, with the switch → receiver port as the bottleneck.
type StarConfig struct {
	// Senders is the number of sender hosts.
	Senders int
	// Access configures every host ↔ switch direction except the
	// bottleneck (sender links both ways, and receiver → switch).
	Access netsim.PortConfig
	// Bottleneck configures the switch → receiver port, the one that
	// carries the queue law under test.
	Bottleneck netsim.PortConfig
}

// Star is a built star topology.
type Star struct {
	Net      *netsim.Network
	Switch   *netsim.Switch
	Receiver *netsim.Host
	Senders  []*netsim.Host
	// Bottleneck is the switch → receiver port.
	Bottleneck *netsim.Port
}

// NewStar wires the star onto an empty network and computes routes.
// Creation order (switch, receiver, then senders) fixes the shard-domain
// numbering: receiver = domain 0, sender i = domain 1+i, then the switch
// ports in attachment order (receiver-facing first).
func NewStar(nw *netsim.Network, cfg StarConfig) (*Star, error) {
	if cfg.Senders < 1 {
		return nil, fmt.Errorf("topo: star needs at least one sender")
	}
	if err := emptyNetwork(nw); err != nil {
		return nil, err
	}
	st := &Star{Net: nw}
	st.Switch = nw.AddSwitch("sw")
	st.Receiver = nw.AddHost("rcv")
	if err := nw.Connect(st.Receiver, st.Switch, cfg.Access, cfg.Bottleneck); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Senders; i++ {
		h := nw.AddHost(fmt.Sprintf("w%d", i))
		st.Senders = append(st.Senders, h)
		if err := nw.Connect(h, st.Switch, cfg.Access, cfg.Access); err != nil {
			return nil, err
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	st.Bottleneck = st.Switch.PortTo(st.Receiver.ID())
	return st, nil
}
