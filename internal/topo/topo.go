// Package topo builds datacenter fabrics on top of netsim: k-ary
// fat-trees and leaf-spine Clos networks with deterministic ECMP
// routing, plus the star used by workload tests. Builders wire an
// existing (empty) Network so the caller controls the engine — a serial
// engine, or shard 0 of a sim.ShardedEngine when the run will be
// partitioned — and they compose with Network.Partition: every host and
// switch port the builders create is an ordinary shard domain.
//
// Path choice in the multi-path fabrics is ECMP by flow hash
// (netsim.ComputeRoutesECMP): the hash salt is drawn once from the
// network engine's seeded source, so placement is a pure function of
// the run seed — reproducible across repeat runs, shard counts, and
// domain assignments.
package topo

import (
	"fmt"
	"math/rand"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
)

// LinkSpec describes one class of full-duplex link.
type LinkSpec struct {
	// Rate is the link speed of each direction.
	Rate netsim.Rate
	// Delay is the one-way propagation delay. It must be positive: it is
	// also the sharded-execution lookahead bound.
	Delay time.Duration
	// BufferBytes is the egress queue capacity of each direction.
	BufferBytes int
}

func (l LinkSpec) validate(name string) error {
	switch {
	case l.Rate <= 0:
		return fmt.Errorf("topo: %s rate must be positive", name)
	case l.Delay <= 0:
		return fmt.Errorf("topo: %s delay must be positive (sharded lookahead)", name)
	case l.BufferBytes <= 0:
		return fmt.Errorf("topo: %s buffer must be positive", name)
	default:
		return nil
	}
}

// Config parameterizes a fabric build.
type Config struct {
	// HostLink is the host ↔ edge-tier link class.
	HostLink LinkSpec
	// FabricLink is the switch ↔ switch link class.
	FabricLink LinkSpec
	// Policy returns a fresh queue law for one switch egress port (every
	// switch port gets its own instance; host uplinks stay DropTail).
	// nil means DropTail everywhere. Randomized laws receive the given
	// seeded source — note that sharded runs then require those ports'
	// domains pinned to shard 0 (see netsim.DefaultAssign).
	Policy func(rng *rand.Rand) aqm.Policy
	// Salt, when non-nil, fixes the ECMP hash salt instead of drawing it
	// from the network engine's RNG. Tests use it to compare placements.
	Salt *uint64
}

func (c Config) validate() error {
	if err := c.HostLink.validate("host link"); err != nil {
		return err
	}
	return c.FabricLink.validate("fabric link")
}

// hostUp is the host → switch port: hosts pace themselves, so the
// uplink keeps DropTail.
func (c Config) hostUp() netsim.PortConfig {
	return netsim.PortConfig{Rate: c.HostLink.Rate, Delay: c.HostLink.Delay, Buffer: c.HostLink.BufferBytes}
}

// hostDown is the switch → host port, carrying the fabric's queue law —
// in a leaf or edge switch this egress queue is the incast bottleneck.
func (c Config) hostDown(rng *rand.Rand) netsim.PortConfig {
	pc := c.hostUp()
	if c.Policy != nil {
		pc.Policy = c.Policy(rng)
	}
	return pc
}

// fabric is a switch → switch port.
func (c Config) fabric(rng *rand.Rand) netsim.PortConfig {
	pc := netsim.PortConfig{Rate: c.FabricLink.Rate, Delay: c.FabricLink.Delay, Buffer: c.FabricLink.BufferBytes}
	if c.Policy != nil {
		pc.Policy = c.Policy(rng)
	}
	return pc
}

// Fabric is a built multi-tier topology.
type Fabric struct {
	// Net is the wired network; routes are already computed.
	Net *netsim.Network
	// Kind names the builder: "fattree" or "leafspine".
	Kind string
	// Hosts lists every host in creation order (pod-major for the
	// fat-tree, leaf-major for leaf-spine).
	Hosts []*netsim.Host
	// Edge, Agg, Core are the switch tiers. Leaf-spine fabrics have no
	// Agg tier: leaves are Edge, spines are Core.
	Edge, Agg, Core []*netsim.Switch
	// Salt is the ECMP hash salt the routes were computed with.
	Salt uint64

	cfg Config
}

// CorePorts returns every port of the core tier (spine ports in a
// leaf-spine), the natural place to observe inter-pod queueing.
func (f *Fabric) CorePorts() []*netsim.Port {
	return tierPorts(f.Core)
}

// AggPorts returns every port of the aggregation tier; in a leaf-spine
// fabric, which has no aggregation switches, it returns the leaf → spine
// uplink ports instead (the matching oversubscription point).
func (f *Fabric) AggPorts() []*netsim.Port {
	if len(f.Agg) > 0 {
		return tierPorts(f.Agg)
	}
	var ports []*netsim.Port
	for _, leaf := range f.Edge {
		for _, spine := range f.Core {
			if p := leaf.PortTo(spine.ID()); p != nil {
				ports = append(ports, p)
			}
		}
	}
	return ports
}

func tierPorts(tier []*netsim.Switch) []*netsim.Port {
	var ports []*netsim.Port
	for _, s := range tier {
		for i := 0; i < s.Ports(); i++ {
			ports = append(ports, s.Port(i))
		}
	}
	return ports
}

// HostBps returns the aggregate host NIC capacity in bytes per second.
func (f *Fabric) HostBps() float64 {
	return float64(len(f.Hosts)) * f.cfg.HostLink.Rate.BytesPerSecond()
}

// BisectionBps returns the fabric's bisection bandwidth in bytes per
// second: half of the smaller of the aggregate host capacity and the
// aggregate core-tier link capacity. For a non-oversubscribed k-ary
// fat-tree the two are equal and the bisection is half the total host
// bandwidth; for an oversubscribed leaf-spine the core tier is the
// limit. Workload generators target offered load as a fraction of this.
func (f *Fabric) BisectionBps() float64 {
	var coreBps float64
	for _, p := range f.CorePorts() {
		coreBps += p.Rate().BytesPerSecond()
	}
	host := f.HostBps()
	if coreBps < host {
		return coreBps / 2
	}
	return host / 2
}

// routes draws the ECMP salt (from cfg.Salt or the engine's seeded
// source) and computes the fabric's routes with it.
func (f *Fabric) routes() error {
	if f.cfg.Salt != nil {
		f.Salt = *f.cfg.Salt
	} else {
		f.Salt = f.Net.Engine().Rand().Uint64()
	}
	return f.Net.ComputeRoutesECMP(f.Salt)
}

func emptyNetwork(nw *netsim.Network) error {
	if len(nw.Hosts()) != 0 || len(nw.Switches()) != 0 {
		return fmt.Errorf("topo: builders require an empty network (domain numbering is creation-order)")
	}
	return nil
}
