package topo

import (
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func testCfg() Config {
	return Config{
		HostLink:   LinkSpec{Rate: netsim.Gbps, Delay: 10 * time.Microsecond, BufferBytes: 256 * 1500},
		FabricLink: LinkSpec{Rate: netsim.Gbps, Delay: 10 * time.Microsecond, BufferBytes: 256 * 1500},
	}
}

type sink struct {
	n  int
	at sim.Time
	e  *sim.Engine
}

func (s *sink) Deliver(*netsim.Packet) {
	s.n++
	if s.e != nil {
		s.at = s.e.Now()
	}
}

func TestFatTreeStructure(t *testing.T) {
	e := sim.NewEngine(1)
	nw := netsim.NewNetwork(e)
	f, err := FatTree(nw, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hosts) != 16 || len(f.Edge) != 8 || len(f.Agg) != 8 || len(f.Core) != 4 {
		t.Fatalf("k=4 tiers: %d hosts, %d edge, %d agg, %d core; want 16/8/8/4",
			len(f.Hosts), len(f.Edge), len(f.Agg), len(f.Core))
	}
	for i, sw := range f.Edge {
		if sw.Ports() != 4 {
			t.Fatalf("edge %d has %d ports, want 4 (2 hosts + 2 aggs)", i, sw.Ports())
		}
	}
	for i, sw := range f.Agg {
		if sw.Ports() != 4 {
			t.Fatalf("agg %d has %d ports, want 4 (2 edges + 2 cores)", i, sw.Ports())
		}
	}
	for i, sw := range f.Core {
		if sw.Ports() != 4 {
			t.Fatalf("core %d has %d ports, want 4 (one per pod)", i, sw.Ports())
		}
	}
	// Domains: 16 hosts + (8+8)·4 switch ports + 4·4 core ports.
	if got := nw.NumDomains(); got != 16+64+16 {
		t.Fatalf("NumDomains = %d, want 96", got)
	}
	if got, want := len(f.CorePorts()), 16; got != want {
		t.Fatalf("CorePorts = %d, want %d", got, want)
	}
	if got, want := len(f.AggPorts()), 32; got != want {
		t.Fatalf("AggPorts = %d, want %d", got, want)
	}
	// Non-oversubscribed: bisection = half the 16 Gbps host capacity.
	wantBps := 16 * netsim.Gbps.BytesPerSecond() / 2
	if got := f.BisectionBps(); got != wantBps {
		t.Fatalf("BisectionBps = %v, want %v", got, wantBps)
	}
}

// TestFatTreePathLengths sends one packet between host pairs at each
// distance class and asserts the exact arrival time: ECMP must pick only
// shortest paths (2 links same-edge, 4 intra-pod, 6 inter-pod).
func TestFatTreePathLengths(t *testing.T) {
	e := sim.NewEngine(1)
	nw := netsim.NewNetwork(e)
	f, err := FatTree(nw, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 1000 B at 1 Gbps: 8 µs serialization + 10 µs propagation per link.
	perLink := sim.FromDuration(18 * time.Microsecond)
	cases := []struct {
		src, dst, links int
	}{
		{0, 1, 2},  // same edge switch
		{0, 2, 4},  // same pod, different edge
		{0, 4, 6},  // different pod
		{3, 15, 6}, // different pod, far corner
	}
	flow := netsim.FlowID(1)
	for _, tc := range cases {
		rx := &sink{e: e}
		f.Hosts[tc.dst].Register(flow, rx)
		sent := e.Now()
		f.Hosts[tc.src].Send(&netsim.Packet{Flow: flow, Dst: f.Hosts[tc.dst].ID(), Size: 1000})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if rx.n != 1 {
			t.Fatalf("%d→%d: not delivered", tc.src, tc.dst)
		}
		if want := sim.Time(tc.links) * perLink; rx.at-sent != want {
			t.Fatalf("%d→%d took %v, want %v (%d links)", tc.src, tc.dst, rx.at-sent, want, tc.links)
		}
		f.Hosts[tc.dst].Unregister(flow)
		flow++
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	e := sim.NewEngine(1)
	nw := netsim.NewNetwork(e)
	f, err := FatTree(nw, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	flow := netsim.FlowID(1)
	for _, src := range f.Hosts {
		for _, dst := range f.Hosts {
			if src == dst {
				continue
			}
			rx := &sink{}
			dst.Register(flow, rx)
			src.Send(&netsim.Packet{Flow: flow, Dst: dst.ID(), Size: 100})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if rx.n != 1 {
				t.Fatalf("%s → %s not delivered", src.Name(), dst.Name())
			}
			dst.Unregister(flow)
			flow++
		}
	}
	for _, sw := range nw.Switches() {
		if sw.DroppedNoRoute() != 0 {
			t.Fatalf("switch %s dropped %d packets for lack of a route", sw.Name(), sw.DroppedNoRoute())
		}
	}
}

// uplinkSpread counts, per edge-switch uplink port, packets enqueued
// after sending one packet for each of n flows from host 0 to an
// inter-pod destination.
func uplinkSpread(t *testing.T, salt uint64, flows int) []uint64 {
	t.Helper()
	cfg := testCfg()
	cfg.Salt = &salt
	e := sim.NewEngine(1)
	nw := netsim.NewNetwork(e)
	f, err := FatTree(nw, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := f.Hosts[12] // pod 3: inter-pod, 4 equal-cost paths
	for i := 0; i < flows; i++ {
		fl := netsim.FlowID(i + 1)
		rx := &sink{}
		dst.Register(fl, rx)
		f.Hosts[0].Send(&netsim.Packet{Flow: fl, Dst: dst.ID(), Size: 100})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if rx.n != 1 {
			t.Fatalf("flow %d not delivered", fl)
		}
		dst.Unregister(fl)
	}
	edge := f.Edge[0] // ports 0,1 face hosts; 2,3 face aggs
	return []uint64{edge.Port(2).Stats().Enqueued, edge.Port(3).Stats().Enqueued}
}

func TestFatTreeECMPSpreadsAndSaltMoves(t *testing.T) {
	a := uplinkSpread(t, 7, 64)
	if a[0] == 0 || a[1] == 0 {
		t.Fatalf("64 flows all hashed onto one uplink: %v", a)
	}
	if b := uplinkSpread(t, 7, 64); a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same salt produced different placement: %v vs %v", a, b)
	}
	if c := uplinkSpread(t, 8, 64); a[0] == c[0] && a[1] == c[1] {
		t.Log("different salt left the uplink split unchanged (possible but unlikely)")
	}
}

func TestFatTreeValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := FatTree(netsim.NewNetwork(e), 3, testCfg()); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := FatTree(netsim.NewNetwork(e), 0, testCfg()); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := testCfg()
	bad.FabricLink.Delay = 0
	if _, err := FatTree(netsim.NewNetwork(e), 4, bad); err == nil {
		t.Fatal("zero fabric delay accepted")
	}
	nw := netsim.NewNetwork(e)
	nw.AddHost("stray")
	if _, err := FatTree(nw, 4, testCfg()); err == nil {
		t.Fatal("non-empty network accepted")
	}
}

func TestLeafSpineStructureAndReachability(t *testing.T) {
	e := sim.NewEngine(1)
	nw := netsim.NewNetwork(e)
	f, err := LeafSpine(nw, 3, 2, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hosts) != 12 || len(f.Edge) != 3 || len(f.Core) != 2 || len(f.Agg) != 0 {
		t.Fatalf("tiers: %d hosts, %d leaves, %d spines", len(f.Hosts), len(f.Edge), len(f.Core))
	}
	for i, leaf := range f.Edge {
		if leaf.Ports() != 4+2 {
			t.Fatalf("leaf %d has %d ports, want 6", i, leaf.Ports())
		}
	}
	// AggPorts in a leaf-spine = leaf→spine uplinks.
	if got, want := len(f.AggPorts()), 3*2; got != want {
		t.Fatalf("AggPorts = %d, want %d", got, want)
	}
	if got, want := len(f.CorePorts()), 2*3; got != want {
		t.Fatalf("CorePorts = %d, want %d", got, want)
	}
	// Oversubscribed 2:1 per leaf (4×1G hosts vs 2×1G uplinks): the core
	// tier caps the bisection at 6 Gbps / 2.
	if got, want := f.BisectionBps(), 6*netsim.Gbps.BytesPerSecond()/2; got != want {
		t.Fatalf("BisectionBps = %v, want %v", got, want)
	}
	flow := netsim.FlowID(1)
	for _, src := range f.Hosts {
		for _, dst := range f.Hosts {
			if src == dst {
				continue
			}
			rx := &sink{}
			dst.Register(flow, rx)
			src.Send(&netsim.Packet{Flow: flow, Dst: dst.ID(), Size: 100})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if rx.n != 1 {
				t.Fatalf("%s → %s not delivered", src.Name(), dst.Name())
			}
			dst.Unregister(flow)
			flow++
		}
	}
}

func TestLeafSpineValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := LeafSpine(netsim.NewNetwork(e), 0, 2, 2, testCfg()); err == nil {
		t.Fatal("zero leaves accepted")
	}
	if _, err := LeafSpine(netsim.NewNetwork(e), 1, 1, 1, testCfg()); err == nil {
		t.Fatal("single-host fabric accepted")
	}
}

// TestFabricComposesWithPartition builds the same leaf-spine on a
// sharded engine's shard 0 and partitions it: the builders' domains are
// ordinary netsim domains, so Partition must accept the default
// assignment and set the lookahead to the fabric's minimum link delay.
func TestFabricComposesWithPartition(t *testing.T) {
	se := sim.NewShardedEngine(1, 4)
	nw := netsim.NewNetwork(se.Shard(0))
	f, err := LeafSpine(nw, 2, 2, 2, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Partition(se, nw.DefaultAssign(4)); err != nil {
		t.Fatal(err)
	}
	if got, want := se.Lookahead(), sim.FromDuration(10*time.Microsecond); got != want {
		t.Fatalf("lookahead %v, want %v", got, want)
	}
	if !nw.Sharded() {
		t.Fatal("network not sharded after Partition")
	}
	_ = f
}

func TestNewStarShape(t *testing.T) {
	e := sim.NewEngine(7)
	nw := netsim.NewNetwork(e)
	access := netsim.PortConfig{Rate: 10 * netsim.Gbps, Delay: 20 * time.Microsecond, Buffer: 4000 * 1500}
	bneck := netsim.PortConfig{Rate: netsim.Gbps, Delay: 20 * time.Microsecond, Buffer: 400 * 1500}
	st, err := NewStar(nw, StarConfig{Senders: 3, Access: access, Bottleneck: bneck})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Senders) != 3 {
		t.Fatalf("senders = %d", len(st.Senders))
	}
	if st.Bottleneck != st.Switch.PortTo(st.Receiver.ID()) {
		t.Fatal("bottleneck is not the switch → receiver port")
	}
	if st.Bottleneck.Rate() != netsim.Gbps {
		t.Fatalf("bottleneck rate %v", st.Bottleneck.Rate())
	}
	// Receiver first, then senders: domain numbering contract.
	if nw.HostDomain(st.Receiver) != 0 || nw.HostDomain(st.Senders[0]) != 1 {
		t.Fatal("star domain numbering changed")
	}
	if _, err := NewStar(nw, StarConfig{Senders: 1, Access: access, Bottleneck: bneck}); err == nil {
		t.Fatal("non-empty network accepted")
	}
}
