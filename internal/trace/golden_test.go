package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/core"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the testdata golden trace")

// goldenTrace runs a short chaos-perturbed dumbbell with a Recorder on
// the bottleneck and returns the raw JSONL. The link-down makes the
// fault kinds (link-down, drop-link-down, link-up) appear alongside the
// packet kinds, so the fixture covers both tracer interfaces.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := core.DumbbellConfig{
		Protocol:   core.DCTCP(40, 1.0/16),
		Flows:      4,
		Rate:       1 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 50,
		Duration:   2 * time.Millisecond,
		Warmup:     time.Millisecond,
		Seed:       1,
		TraceTo:    &buf,
		Chaos: &chaos.Plan{
			Name: "golden-trace-blackout",
			Events: []chaos.Event{
				{At: chaos.D(1500 * time.Microsecond), Kind: chaos.KindLinkDown,
					Link: "bottleneck", Flush: true, DownFor: chaos.D(200 * time.Microsecond)},
			},
		},
	}
	if _, err := core.RunDumbbell(cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTrace pins the Recorder's exact JSONL output for a short
// dumbbell run. Regenerate with:
//
//	go test ./internal/trace -run Golden -update
func TestGoldenTrace(t *testing.T) {
	got := goldenTrace(t)
	path := filepath.Join("testdata", "golden_dumbbell.jsonl")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace drifted from %s: got %d bytes, want %d (run with -update if intended)",
			path, len(got), len(want))
	}
}

// TestGoldenTraceWellFormed re-decodes the fixture line by line: every
// line is valid JSON, timestamps are nondecreasing, and both packet and
// fault kinds are present.
func TestGoldenTraceWellFormed(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_dumbbell.jsonl"))
	if err != nil {
		t.Fatalf("%v (run TestGoldenTrace with -update to generate)", err)
	}
	kinds := map[trace.Kind]int{}
	prev := -1.0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	lines := 0
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines+1, err)
		}
		if ev.T < prev {
			t.Fatalf("line %d: timestamp %v before %v", lines+1, ev.T, prev)
		}
		prev = ev.T
		kinds[ev.Kind]++
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("fixture is empty")
	}
	for _, want := range []trace.Kind{
		trace.KindEnqueue, trace.KindDequeue,
		trace.KindLinkDown, trace.KindLinkUp, trace.KindDropLinkDown,
	} {
		if kinds[want] == 0 {
			t.Errorf("fixture has no %q events", want)
		}
	}
}
