// Package trace records structured per-packet simulator events as JSON
// Lines, the debugging/analysis sidecar any released network simulator
// needs: attach a Recorder to a port (it implements netsim.PortTracer)
// and every enqueue, dequeue, CE mark, and drop becomes one JSON object
// with the virtual timestamp.
//
// # Fault and chaos events
//
// The Recorder also implements netsim.FaultTracer, so ports mutated by
// the chaos layer (internal/chaos) report their fault events in the same
// JSONL stream:
//
//   - "link-down" / "link-up": the port's link changed state; qlen is
//     the queue occupancy at the transition (nonzero on link-down means
//     packets are being held in drain mode, or were just flushed).
//   - "corrupt": a packet was lost to probabilistic corruption after
//     serialization (it never reaches the far end).
//   - "drop-link-down": a packet lost to a down link — an arrival at a
//     down port, an in-flight transmission cut by the outage, or a
//     queued packet discarded by a flush.
//   - "burst-start" / "burst-stop": a chaos background-traffic injector
//     switched on or off; name carries the injector's label.
//
// All fault events carry the usual packet fields when a packet is
// involved; link-state and burst events are link-scoped and carry none.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Kind labels one traced event.
type Kind string

// Event kinds emitted by Recorder.
const (
	// KindEnqueue is a packet accepted into a queue.
	KindEnqueue Kind = "enqueue"
	// KindDequeue is a packet entering transmission.
	KindDequeue Kind = "dequeue"
	// KindMark is a packet accepted with CE set by this port (also
	// reported as its enqueue's marked field).
	KindMark Kind = "mark"
	// KindDropOverflow is a packet lost to buffer exhaustion.
	KindDropOverflow Kind = "drop-overflow"
	// KindDropPolicy is a packet dropped by the queue law.
	KindDropPolicy Kind = "drop-policy"
	// KindCustom carries caller-defined samples (cwnd, α, ...).
	KindCustom Kind = "custom"
	// KindLinkDown is a port's link going down (chaos layer).
	KindLinkDown Kind = "link-down"
	// KindLinkUp is a port's link coming back up (chaos layer).
	KindLinkUp Kind = "link-up"
	// KindCorrupt is a packet lost to probabilistic corruption.
	KindCorrupt Kind = "corrupt"
	// KindDropLinkDown is a packet lost to a down link (arrival, cut
	// in-flight transmission, or flushed queue slot).
	KindDropLinkDown Kind = "drop-link-down"
	// KindBurstStart is a chaos background-traffic injector starting.
	KindBurstStart Kind = "burst-start"
	// KindBurstStop is a chaos background-traffic injector stopping.
	KindBurstStop Kind = "burst-stop"
)

// Event is one JSONL record.
type Event struct {
	// T is the virtual timestamp in seconds.
	T float64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Flow is the packet's flow, when applicable.
	Flow int `json:"flow,omitempty"`
	// Seq is the packet's byte sequence number (data packets).
	Seq int64 `json:"seq,omitempty"`
	// Ack is the cumulative acknowledgement (ACK packets).
	Ack int64 `json:"ack,omitempty"`
	// Bytes is the packet's wire size.
	Bytes int `json:"bytes,omitempty"`
	// QueuePkts is the queue occupancy after the event, in packets of
	// the recorder's configured size (0 disables the conversion and the
	// field reports bytes).
	QueuePkts float64 `json:"qlen,omitempty"`
	// Marked reports CE set at this port (enqueue events).
	Marked bool `json:"marked,omitempty"`
	// Name and Value carry custom samples.
	Name  string  `json:"name,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Recorder streams events to an io.Writer as JSON Lines. It implements
// netsim.PortTracer. The zero value is unusable; use NewRecorder.
type Recorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	// PacketSize, when positive, converts queue occupancy to packets.
	PacketSize int
	// Filter, when set, drops events for which it returns false before
	// encoding.
	Filter func(*Event) bool

	events uint64
	err    error
}

// NewRecorder creates a recorder writing JSONL to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Events reports how many events were written.
func (r *Recorder) Events() uint64 { return r.events }

// Err returns the first write error, if any. Writes after an error are
// dropped silently (tracing must never take down a simulation).
func (r *Recorder) Err() error { return r.err }

// Flush drains buffered output to the underlying writer.
func (r *Recorder) Flush() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Emit writes one event, applying the filter.
func (r *Recorder) Emit(ev Event) {
	if r.err != nil {
		return
	}
	if r.Filter != nil && !r.Filter(&ev) {
		return
	}
	if err := r.enc.Encode(ev); err != nil {
		r.err = fmt.Errorf("trace: %w", err)
		return
	}
	r.events++
}

// Custom records a named scalar sample (cwnd, α, ...).
func (r *Recorder) Custom(now sim.Time, name string, value float64) {
	r.Emit(Event{T: now.Seconds(), Kind: KindCustom, Name: name, Value: value})
}

// PacketEnqueued implements netsim.PortTracer.
func (r *Recorder) PacketEnqueued(now sim.Time, pkt *netsim.Packet, qlenBytes int, marked bool) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	ev.Kind = KindEnqueue
	ev.Marked = marked
	r.Emit(ev)
	if marked {
		mk := ev
		mk.Kind = KindMark
		r.Emit(mk)
	}
}

// PacketDequeued implements netsim.PortTracer.
func (r *Recorder) PacketDequeued(now sim.Time, pkt *netsim.Packet, qlenBytes int) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	ev.Kind = KindDequeue
	r.Emit(ev)
}

// PacketDropped implements netsim.PortTracer.
func (r *Recorder) PacketDropped(now sim.Time, pkt *netsim.Packet, qlenBytes int, overflow bool) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	if overflow {
		ev.Kind = KindDropOverflow
	} else {
		ev.Kind = KindDropPolicy
	}
	r.Emit(ev)
}

// PacketFaulted implements netsim.FaultTracer: a packet lost to a chaos
// fault (corruption or a down link).
func (r *Recorder) PacketFaulted(now sim.Time, pkt *netsim.Packet, qlenBytes int, kind netsim.FaultKind) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	switch kind {
	case netsim.FaultCorrupt:
		ev.Kind = KindCorrupt
	default:
		ev.Kind = KindDropLinkDown
	}
	r.Emit(ev)
}

// LinkStateChanged implements netsim.FaultTracer: the traced port's link
// went down or came back up.
func (r *Recorder) LinkStateChanged(now sim.Time, up bool, qlenBytes int) {
	q := float64(qlenBytes)
	if r.PacketSize > 0 {
		q /= float64(r.PacketSize)
	}
	kind := KindLinkDown
	if up {
		kind = KindLinkUp
	}
	r.Emit(Event{T: now.Seconds(), Kind: kind, QueuePkts: q})
}

// Burst records a chaos background-traffic injector switching on or off.
func (r *Recorder) Burst(now sim.Time, start bool, name string) {
	kind := KindBurstStop
	if start {
		kind = KindBurstStart
	}
	r.Emit(Event{T: now.Seconds(), Kind: kind, Name: name})
}

func (r *Recorder) packetEvent(now sim.Time, pkt *netsim.Packet, qlenBytes int) Event {
	q := float64(qlenBytes)
	if r.PacketSize > 0 {
		q /= float64(r.PacketSize)
	}
	ev := Event{
		T:         now.Seconds(),
		Flow:      int(pkt.Flow),
		Bytes:     pkt.Size,
		QueuePkts: q,
	}
	if pkt.IsAck {
		ev.Ack = pkt.Ack
	} else {
		ev.Seq = pkt.Seq
	}
	return ev
}

var (
	_ netsim.PortTracer  = (*Recorder)(nil)
	_ netsim.FaultTracer = (*Recorder)(nil)
)
