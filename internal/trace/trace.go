// Package trace records structured per-packet simulator events as JSON
// Lines, the debugging/analysis sidecar any released network simulator
// needs: attach a Recorder to a port (it implements netsim.PortTracer)
// and every enqueue, dequeue, CE mark, and drop becomes one JSON object
// with the virtual timestamp.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Kind labels one traced event.
type Kind string

// Event kinds emitted by Recorder.
const (
	// KindEnqueue is a packet accepted into a queue.
	KindEnqueue Kind = "enqueue"
	// KindDequeue is a packet entering transmission.
	KindDequeue Kind = "dequeue"
	// KindMark is a packet accepted with CE set by this port (also
	// reported as its enqueue's marked field).
	KindMark Kind = "mark"
	// KindDropOverflow is a packet lost to buffer exhaustion.
	KindDropOverflow Kind = "drop-overflow"
	// KindDropPolicy is a packet dropped by the queue law.
	KindDropPolicy Kind = "drop-policy"
	// KindCustom carries caller-defined samples (cwnd, α, ...).
	KindCustom Kind = "custom"
)

// Event is one JSONL record.
type Event struct {
	// T is the virtual timestamp in seconds.
	T float64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Flow is the packet's flow, when applicable.
	Flow int `json:"flow,omitempty"`
	// Seq is the packet's byte sequence number (data packets).
	Seq int64 `json:"seq,omitempty"`
	// Ack is the cumulative acknowledgement (ACK packets).
	Ack int64 `json:"ack,omitempty"`
	// Bytes is the packet's wire size.
	Bytes int `json:"bytes,omitempty"`
	// QueuePkts is the queue occupancy after the event, in packets of
	// the recorder's configured size (0 disables the conversion and the
	// field reports bytes).
	QueuePkts float64 `json:"qlen,omitempty"`
	// Marked reports CE set at this port (enqueue events).
	Marked bool `json:"marked,omitempty"`
	// Name and Value carry custom samples.
	Name  string  `json:"name,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Recorder streams events to an io.Writer as JSON Lines. It implements
// netsim.PortTracer. The zero value is unusable; use NewRecorder.
type Recorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	// PacketSize, when positive, converts queue occupancy to packets.
	PacketSize int
	// Filter, when set, drops events for which it returns false before
	// encoding.
	Filter func(*Event) bool

	events uint64
	err    error
}

// NewRecorder creates a recorder writing JSONL to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Events reports how many events were written.
func (r *Recorder) Events() uint64 { return r.events }

// Err returns the first write error, if any. Writes after an error are
// dropped silently (tracing must never take down a simulation).
func (r *Recorder) Err() error { return r.err }

// Flush drains buffered output to the underlying writer.
func (r *Recorder) Flush() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Emit writes one event, applying the filter.
func (r *Recorder) Emit(ev Event) {
	if r.err != nil {
		return
	}
	if r.Filter != nil && !r.Filter(&ev) {
		return
	}
	if err := r.enc.Encode(ev); err != nil {
		r.err = fmt.Errorf("trace: %w", err)
		return
	}
	r.events++
}

// Custom records a named scalar sample (cwnd, α, ...).
func (r *Recorder) Custom(now sim.Time, name string, value float64) {
	r.Emit(Event{T: now.Seconds(), Kind: KindCustom, Name: name, Value: value})
}

// PacketEnqueued implements netsim.PortTracer.
func (r *Recorder) PacketEnqueued(now sim.Time, pkt *netsim.Packet, qlenBytes int, marked bool) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	ev.Kind = KindEnqueue
	ev.Marked = marked
	r.Emit(ev)
	if marked {
		mk := ev
		mk.Kind = KindMark
		r.Emit(mk)
	}
}

// PacketDequeued implements netsim.PortTracer.
func (r *Recorder) PacketDequeued(now sim.Time, pkt *netsim.Packet, qlenBytes int) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	ev.Kind = KindDequeue
	r.Emit(ev)
}

// PacketDropped implements netsim.PortTracer.
func (r *Recorder) PacketDropped(now sim.Time, pkt *netsim.Packet, qlenBytes int, overflow bool) {
	ev := r.packetEvent(now, pkt, qlenBytes)
	if overflow {
		ev.Kind = KindDropOverflow
	} else {
		ev.Kind = KindDropPolicy
	}
	r.Emit(ev)
}

func (r *Recorder) packetEvent(now sim.Time, pkt *netsim.Packet, qlenBytes int) Event {
	q := float64(qlenBytes)
	if r.PacketSize > 0 {
		q /= float64(r.PacketSize)
	}
	ev := Event{
		T:         now.Seconds(),
		Flow:      int(pkt.Flow),
		Bytes:     pkt.Size,
		QueuePkts: q,
	}
	if pkt.IsAck {
		ev.Ack = pkt.Ack
	} else {
		ev.Seq = pkt.Seq
	}
	return ev
}

var _ netsim.PortTracer = (*Recorder)(nil)
