package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func decodeAll(t *testing.T, raw string) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(strings.NewReader(raw))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

func TestRecorderPacketEvents(t *testing.T) {
	var b strings.Builder
	r := NewRecorder(&b)
	r.PacketSize = 1500

	pkt := &netsim.Packet{Flow: 7, Seq: 1460, Size: 1500}
	r.PacketEnqueued(sim.FromDuration(time.Microsecond), pkt, 3000, true)
	r.PacketDequeued(sim.FromDuration(2*time.Microsecond), pkt, 1500)
	r.PacketDropped(sim.FromDuration(3*time.Microsecond), pkt, 3000, true)
	r.PacketDropped(sim.FromDuration(4*time.Microsecond), pkt, 3000, false)
	ack := &netsim.Packet{Flow: 7, IsAck: true, Ack: 2920, Size: 40}
	r.PacketEnqueued(sim.FromDuration(5*time.Microsecond), ack, 40, false)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := decodeAll(t, b.String())
	// enqueue + mark, dequeue, drop-overflow, drop-policy, enqueue = 6.
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	if evs[0].Kind != KindEnqueue || !evs[0].Marked || evs[0].QueuePkts != 2 {
		t.Fatalf("first event: %+v", evs[0])
	}
	if evs[1].Kind != KindMark {
		t.Fatalf("second event: %+v", evs[1])
	}
	if evs[2].Kind != KindDequeue || evs[2].QueuePkts != 1 {
		t.Fatalf("dequeue event: %+v", evs[2])
	}
	if evs[3].Kind != KindDropOverflow || evs[4].Kind != KindDropPolicy {
		t.Fatalf("drop events: %+v %+v", evs[3], evs[4])
	}
	if evs[5].Ack != 2920 || evs[5].Seq != 0 {
		t.Fatalf("ack event: %+v", evs[5])
	}
	if r.Events() != 6 {
		t.Fatalf("Events() = %d", r.Events())
	}
}

func TestRecorderCustomAndFilter(t *testing.T) {
	var b strings.Builder
	r := NewRecorder(&b)
	r.Filter = func(ev *Event) bool { return ev.Kind == KindCustom }

	r.PacketEnqueued(0, &netsim.Packet{Size: 1500}, 1500, false) // filtered out
	r.Custom(sim.FromDuration(time.Millisecond), "cwnd", 42.5)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := decodeAll(t, b.String())
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1 after filtering", len(evs))
	}
	if evs[0].Name != "cwnd" || evs[0].Value != 42.5 || evs[0].T != 0.001 {
		t.Fatalf("custom event: %+v", evs[0])
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after -= len(p)
	return len(p), nil
}

func TestRecorderWriteErrorIsSticky(t *testing.T) {
	r := NewRecorder(&failingWriter{after: 0})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		r.Custom(0, "x", float64(i))
	}
	r.Flush()
	if r.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	before := r.Events()
	r.Custom(0, "y", 1) // must be dropped silently
	if r.Events() != before {
		t.Fatal("events written after error")
	}
}

// Integration: attach the recorder to a live port and check the stream is
// consistent (enqueues ≥ dequeues, counts match port stats).
func TestRecorderOnLivePort(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	a := n.AddHost("a")
	bHost := n.AddHost("b")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: netsim.Gbps, Delay: time.Microsecond, Buffer: 5 * 1500}
	if err := n.Connect(a, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(bHost, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	rec := NewRecorder(&buf)
	rec.PacketSize = 1500
	up := a.Uplink()
	up.SetTracer(rec)

	sinkEp := endpointFunc(func(*netsim.Packet) {})
	bHost.Register(1, sinkEp)
	for i := 0; i < 20; i++ { // overflows the 5-packet buffer
		a.Send(&netsim.Packet{Flow: 1, Dst: bHost.ID(), Size: 1500})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := decodeAll(t, buf.String())
	var enq, deq, drop int
	for _, ev := range evs {
		switch ev.Kind {
		case KindEnqueue:
			enq++
		case KindDequeue:
			deq++
		case KindDropOverflow:
			drop++
		}
	}
	st := up.Stats()
	if uint64(enq) != st.Enqueued || uint64(deq) != st.Dequeued || uint64(drop) != st.DroppedOverflow {
		t.Fatalf("trace counts (%d,%d,%d) disagree with port stats %+v", enq, deq, drop, st)
	}
	if drop == 0 {
		t.Fatal("expected overflow drops in this scenario")
	}
}

type endpointFunc func(*netsim.Packet)

func (f endpointFunc) Deliver(p *netsim.Packet) { f(p) }
