package workload

import (
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
)

// ForegroundConfig parameterizes the hybrid co-simulation's foreground
// traffic: each host runs one persistent connection to the receiver and
// repeatedly transfers Bytes, pausing Gap between a transfer's last
// acknowledgement and the next transfer's start. Per-transfer completion
// times are recorded — the foreground FCTs the hybrid conformance grid
// compares against a fully packet-level run.
//
// All per-flow state lives on the sender host's engine (its shard under
// partitioning): starts self-schedule there and completions fire there,
// so the workload is byte-identical for any shard count.
type ForegroundConfig struct {
	// Hosts are the foreground senders, one flow each.
	Hosts []*netsim.Host
	// Receiver absorbs every transfer.
	Receiver *netsim.Host
	// Bytes is the size of each transfer.
	Bytes int64
	// Gap is think time between a completion and the next transfer.
	Gap time.Duration
	// TCP configures all senders.
	TCP tcp.Config
	// BaseFlow is the first flow ID; one ID per host.
	BaseFlow netsim.FlowID
	// StartJitter staggers first transfers uniformly over the interval,
	// drawn from the construction engine's seeded stream.
	StartJitter time.Duration
	// Horizon stops the workload: no transfer starts at or after it.
	Horizon time.Duration
	// Warmup excludes early transfers: only completions of transfers
	// started at or after it are recorded.
	Warmup time.Duration
}

// Foreground runs repeated fixed-size transfers and records their FCTs.
type Foreground struct {
	flows []*fgFlow
}

type fgFlow struct {
	eng     *sim.Engine
	s       *tcp.Sender
	bytes   int64
	gap     time.Duration
	horizon sim.Time
	warmup  sim.Time

	started   sim.Time
	transfers int
	fcts      []float64
	nextFn    func()
}

// StartForeground creates the flows and schedules their first transfers.
// Call it with the construction engine (shard 0 under partitioning, after
// Partition) so jitter draws come from the serial-identical stream.
func StartForeground(engine *sim.Engine, cfg ForegroundConfig) *Foreground {
	w := &Foreground{}
	for i, h := range cfg.Hosts {
		flow := cfg.BaseFlow + netsim.FlowID(i)
		s := tcp.NewSender(h, flow, cfg.Receiver.ID(), cfg.Bytes, cfg.TCP)
		tcp.NewReceiver(cfg.Receiver, flow, h.ID(), cfg.TCP)
		f := &fgFlow{
			eng:     h.Engine(),
			s:       s,
			bytes:   cfg.Bytes,
			gap:     cfg.Gap,
			horizon: sim.FromDuration(cfg.Horizon),
			warmup:  sim.FromDuration(cfg.Warmup),
		}
		f.nextFn = f.next
		s.OnComplete = f.complete
		start := engine.Now()
		if cfg.StartJitter > 0 {
			start = start.Add(time.Duration(engine.Rand().Int63n(int64(cfg.StartJitter))))
		}
		f.started = start
		s.StartAt(start)
		w.flows = append(w.flows, f)
	}
	return w
}

// complete runs on the sender's shard at each transfer completion.
func (f *fgFlow) complete(now sim.Time) {
	f.transfers++
	if f.started >= f.warmup {
		f.fcts = append(f.fcts, (now - f.started).Seconds())
	}
	if next := now.Add(f.gap); next < f.horizon {
		f.eng.Schedule(next, f.nextFn)
	}
}

// next starts the flow's next transfer on its own shard.
func (f *fgFlow) next() {
	f.started = f.eng.Now()
	f.s.Extend(f.bytes)
}

// FCTs returns every recorded completion time in seconds, concatenated
// in flow order — a deterministic, shard-invariant sequence.
func (w *Foreground) FCTs() []float64 {
	var out []float64
	for _, f := range w.flows {
		out = append(out, f.fcts...)
	}
	return out
}

// Transfers counts completed transfers across all flows, warmup included.
func (w *Foreground) Transfers() int {
	total := 0
	for _, f := range w.flows {
		total += f.transfers
	}
	return total
}

// Timeouts sums RTO firings across flows.
func (w *Foreground) Timeouts() uint64 {
	var total uint64
	for _, f := range w.flows {
		total += f.s.Stats().Timeouts
	}
	return total
}
