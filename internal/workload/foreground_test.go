package workload

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/tcp"
)

func TestForegroundRepeatsTransfersAndRecordsFCTs(t *testing.T) {
	e, hosts, rcv, _ := star(t, 3, 1*netsim.Gbps, 400, aqm.NewSingleThresholdPackets(40, 1500))
	w := StartForeground(e, ForegroundConfig{
		Hosts:       hosts,
		Receiver:    rcv,
		Bytes:       10_000,
		Gap:         200 * time.Microsecond,
		TCP:         tcp.DefaultConfig(tcp.DCTCP),
		BaseFlow:    1,
		StartJitter: 50 * time.Microsecond,
		Horizon:     20 * time.Millisecond,
		Warmup:      2 * time.Millisecond,
	})
	if err := e.RunFor(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := w.Transfers(); got < 3*10 {
		t.Fatalf("only %d transfers completed across 3 flows in 20 ms", got)
	}
	fcts := w.FCTs()
	if len(fcts) == 0 {
		t.Fatal("no post-warmup FCTs recorded")
	}
	// Warmup excludes early transfers: strictly fewer FCTs than
	// completions, and every recorded one is positive.
	if len(fcts) >= w.Transfers() {
		t.Fatalf("%d FCTs vs %d transfers: warmup excluded nothing", len(fcts), w.Transfers())
	}
	for i, fct := range fcts {
		if fct <= 0 {
			t.Fatalf("FCT[%d] = %v, want > 0", i, fct)
		}
	}
	_ = w.Timeouts() // must not panic
}

// TestForegroundHorizonStopsNewTransfers pins the horizon contract: no
// transfer starts at or after it, so a run past the horizon adds no
// completions.
func TestForegroundHorizonStopsNewTransfers(t *testing.T) {
	e, hosts, rcv, _ := star(t, 2, 1*netsim.Gbps, 400, nil)
	w := StartForeground(e, ForegroundConfig{
		Hosts:    hosts,
		Receiver: rcv,
		Bytes:    5_000,
		Gap:      100 * time.Microsecond,
		TCP:      tcp.DefaultConfig(tcp.DCTCP),
		BaseFlow: 1,
		Horizon:  5 * time.Millisecond,
	})
	if err := e.RunFor(6 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	atHorizon := w.Transfers()
	if atHorizon == 0 {
		t.Fatal("no transfers before the horizon")
	}
	if err := e.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := w.Transfers(); got != atHorizon {
		t.Fatalf("transfers kept completing after the horizon: %d -> %d", atHorizon, got)
	}
}

// TestForegroundFCTsAreFlowOrdered pins the determinism-relevant
// accessor contract: FCTs concatenate per-flow histories in flow order,
// so the sequence is invariant to event interleaving across shards.
func TestForegroundFCTsAreFlowOrdered(t *testing.T) {
	e, hosts, rcv, _ := star(t, 2, 1*netsim.Gbps, 400, nil)
	w := StartForeground(e, ForegroundConfig{
		Hosts:    hosts,
		Receiver: rcv,
		Bytes:    5_000,
		Gap:      500 * time.Microsecond,
		TCP:      tcp.DefaultConfig(tcp.DCTCP),
		BaseFlow: 1,
		Horizon:  10 * time.Millisecond,
	})
	if err := e.RunFor(12 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, f := range w.flows {
		want = append(want, f.fcts...)
	}
	got := w.FCTs()
	if len(got) != len(want) {
		t.Fatalf("FCTs() returned %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FCTs()[%d] = %v, want %v (flow-order concatenation)", i, got[i], want[i])
		}
	}
}
