// Package workload builds the traffic patterns of the paper's evaluation:
// long-lived bulk flows sharing one bottleneck (Figs. 1, 10–12), and
// barrier-synchronized partition/aggregate queries (Figs. 14–15, the
// incast and completion-time experiments).
package workload

import (
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
)

// LongLived drives N never-ending flows from distinct sender hosts to one
// receiver host.
type LongLived struct {
	// Senders returns the transport senders, one per flow, for α and
	// cwnd sampling.
	Senders []*tcp.Sender

	receivers []*tcp.Receiver
}

// LongLivedConfig parameterizes a long-lived flow set.
type LongLivedConfig struct {
	// Hosts are the sending hosts, one flow each.
	Hosts []*netsim.Host
	// Receiver is the common sink host.
	Receiver *netsim.Host
	// TCP is the endpoint configuration shared by all flows.
	TCP tcp.Config
	// BaseFlow is the first flow ID; flow i uses BaseFlow+i.
	BaseFlow netsim.FlowID
	// StartJitter spreads flow starts uniformly over the interval to
	// avoid perfect phase lock; the paper starts all flows "at the same
	// time", which a one-RTT jitter still honours. Zero starts all
	// flows at t=0 exactly.
	StartJitter time.Duration
}

// StartLongLived creates and starts the flow set at the current instant.
func StartLongLived(engine *sim.Engine, cfg LongLivedConfig) *LongLived {
	w := &LongLived{}
	for i, h := range cfg.Hosts {
		flow := cfg.BaseFlow + netsim.FlowID(i)
		tcpCfg := plusPacingSeed(engine, cfg.TCP)
		s := tcp.NewSender(h, flow, cfg.Receiver.ID(), 0, tcpCfg)
		r := tcp.NewReceiver(cfg.Receiver, flow, h.ID(), cfg.TCP)
		w.Senders = append(w.Senders, s)
		w.receivers = append(w.receivers, r)
		if cfg.StartJitter > 0 {
			jitter := time.Duration(engine.Rand().Int63n(int64(cfg.StartJitter)))
			s.StartAt(engine.Now().Add(jitter))
		} else {
			s.Start()
		}
	}
	return w
}

// plusPacingSeed draws a DCTCP+ pacing seed from the construction
// engine's root source — one draw per sender, in construction order.
// Construction runs before the shards fork (serial engine, or shard 0
// whose stream equals the serial one), so the seed — and with it every
// runtime pacing draw, which goes through the sender's private RNG — is
// a pure function of the run seed and byte-identical for any shard
// count. Other variants take no draw, leaving their RNG streams (and the
// committed golden digests) untouched.
func plusPacingSeed(engine *sim.Engine, cfg tcp.Config) tcp.Config {
	if cfg.Variant == tcp.DCTCPPlus && cfg.PacingSeed == 0 {
		cfg.PacingSeed = engine.Rand().Int63() + 1
	}
	return cfg
}

// TotalAcked sums acknowledged bytes across all flows.
func (w *LongLived) TotalAcked() int64 {
	var total int64
	for _, s := range w.Senders {
		total += s.Acked()
	}
	return total
}

// MeanAlpha averages the instantaneous α across flows.
func (w *LongLived) MeanAlpha() float64 {
	if len(w.Senders) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range w.Senders {
		sum += s.Alpha()
	}
	return sum / float64(len(w.Senders))
}

// Timeouts sums RTO firings across flows.
func (w *LongLived) Timeouts() uint64 {
	var total uint64
	for _, s := range w.Senders {
		total += s.Stats().Timeouts
	}
	return total
}
