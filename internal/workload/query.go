package workload

import (
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
)

// QueryConfig parameterizes a repeated partition/aggregate query: every
// round, all workers simultaneously send BytesPerWorker to the aggregator;
// the round completes when the last byte is acknowledged.
//
// With BytesPerWorker fixed (64 KB) this is the paper's Incast experiment
// (Fig. 14); with BytesPerWorker = TotalBytes/n it is the completion-time
// experiment (Fig. 15).
type QueryConfig struct {
	// Workers are the responding hosts.
	Workers []*netsim.Host
	// Aggregator is the querying host that receives every response.
	Aggregator *netsim.Host
	// BytesPerWorker is each worker's response size.
	BytesPerWorker int64
	// Rounds is the number of repetitions.
	Rounds int
	// Gap is idle time between a round's completion and the next
	// round's start, modelling the aggregator's think time.
	Gap time.Duration
	// TCP configures all worker senders.
	TCP tcp.Config
	// Deadline, when positive, gives every response a completion
	// deadline of round-start + Deadline; D2TCP senders use it to
	// modulate their backoff, and the runner counts misses for every
	// variant.
	Deadline time.Duration
	// Persistent reuses one connection per worker across rounds, the
	// standard incast benchmark setup: after the first round responses
	// resume with the congestion state the previous round left behind.
	// When false, every round opens fresh connections in slow start.
	Persistent bool
	// BaseFlow is the first flow ID; the runner consumes
	// Rounds×len(Workers) consecutive IDs (one set when Persistent).
	BaseFlow netsim.FlowID
	// StartJitter staggers each worker's response uniformly over the
	// interval, modelling request fan-out serialization and host
	// scheduling noise. Zero starts all workers at the same instant.
	StartJitter time.Duration
	// OnDone, when set, fires after the final round completes.
	OnDone func()
}

// QueryRound records one completed round.
type QueryRound struct {
	// Start and End bound the round.
	Start, End sim.Time
	// Timeouts counts RTO firings during the round, the paper's
	// explanation for throughput collapse.
	Timeouts uint64
	// Retransmissions counts retransmitted segments during the round.
	Retransmissions uint64
	// MissedDeadlines counts workers that finished after the round's
	// deadline (always 0 when no deadline is configured).
	MissedDeadlines int
}

// Completion returns the round's query completion time.
func (r QueryRound) Completion() time.Duration { return (r.End - r.Start).Duration() }

// QueryRunner executes a QueryConfig round by round.
type QueryRunner struct {
	engine *sim.Engine
	cfg    QueryConfig

	rounds    []QueryRound
	round     int
	remaining int
	started   sim.Time
	senders   []*tcp.Sender
	receivers []*tcp.Receiver
	// Baselines for per-round deltas on persistent connections.
	baseTimeouts, baseRetx uint64
	done                   bool

	// se and inFlight drive relay mode (StartQueriesSharded): round
	// starts are injected into worker shards, round completion is
	// detected at epoch barriers.
	se       *sim.ShardedEngine
	inFlight bool
}

// StartQueries begins the first round at the current instant.
func StartQueries(engine *sim.Engine, cfg QueryConfig) *QueryRunner {
	q := &QueryRunner{engine: engine, cfg: cfg}
	if cfg.Rounds > 0 && len(cfg.Workers) > 0 {
		q.startRound()
	} else {
		q.done = true
	}
	return q
}

// StartQueriesSharded begins the workload on a partitioned network in
// relay mode: the runner becomes a barrier-level controller. Each round
// start draws the per-worker jitters from shard 0's root RNG — in worker
// order, exactly as the serial runner would at the same instant — and
// injects a kick event into each worker's shard carrying the serial
// run's (at, schedAt) key. Round completion is detected at the epoch
// barrier closing the window of the last acknowledgement: sender stats
// freeze at completion, so the barrier reads the same values the serial
// OnComplete handler saw, and the next round is scheduled as a barrier
// task at exactly End+Gap.
//
// Relay mode requires persistent connections (fresh per-round endpoint
// construction is serial-only) and a Gap of at least twice the
// coordinator's lookahead, so the next round's start always lies beyond
// the barrier that detects the previous round's completion. Callers
// (core.RunQuery) validate both.
func StartQueriesSharded(se *sim.ShardedEngine, cfg QueryConfig) *QueryRunner {
	q := &QueryRunner{engine: se.Shard(0), se: se, cfg: cfg}
	if cfg.Rounds > 0 && len(cfg.Workers) > 0 {
		q.startRoundRelay(sim.TimeZero)
		se.AddBarrierHook(q.pollRelay)
	} else {
		q.done = true
	}
	return q
}

// Done reports whether every round has completed.
func (q *QueryRunner) Done() bool { return q.done }

// Rounds returns the completed rounds (shared slice; do not mutate).
func (q *QueryRunner) Rounds() []QueryRound { return q.rounds }

// CompletionTimes lists each round's query completion time in seconds.
func (q *QueryRunner) CompletionTimes() []float64 {
	out := make([]float64, len(q.rounds))
	for i, r := range q.rounds {
		out[i] = r.Completion().Seconds()
	}
	return out
}

// GoodputsBps lists each round's application goodput in bits/second:
// total response bytes divided by the query completion time.
func (q *QueryRunner) GoodputsBps() []float64 {
	out := make([]float64, len(q.rounds))
	total := float64(q.cfg.BytesPerWorker) * float64(len(q.cfg.Workers)) * 8
	for i, r := range q.rounds {
		out[i] = total / r.Completion().Seconds()
	}
	return out
}

// TotalMissedDeadlines sums deadline misses over all rounds.
func (q *QueryRunner) TotalMissedDeadlines() int {
	total := 0
	for _, r := range q.rounds {
		total += r.MissedDeadlines
	}
	return total
}

// TotalTimeouts sums timeouts over all rounds.
func (q *QueryRunner) TotalTimeouts() uint64 {
	var total uint64
	for _, r := range q.rounds {
		total += r.Timeouts
	}
	return total
}

func (q *QueryRunner) startRound() {
	q.started = q.engine.Now()
	q.remaining = len(q.cfg.Workers)
	deadline := sim.TimeNever
	if q.cfg.Deadline > 0 {
		deadline = q.started.Add(q.cfg.Deadline)
	}
	if q.cfg.Persistent && q.round > 0 {
		for _, s := range q.senders {
			s := s
			if q.cfg.Deadline > 0 {
				s.Deadline = deadline
			}
			q.kickoff(func() { s.Extend(q.cfg.BytesPerWorker) })
		}
		return
	}
	q.senders = q.senders[:0]
	q.receivers = q.receivers[:0]
	base := q.cfg.BaseFlow
	if !q.cfg.Persistent {
		base += netsim.FlowID(q.round * len(q.cfg.Workers))
	}
	for i, worker := range q.cfg.Workers {
		flow := base + netsim.FlowID(i)
		s := tcp.NewSender(worker, flow, q.cfg.Aggregator.ID(), q.cfg.BytesPerWorker, plusPacingSeed(q.engine, q.cfg.TCP))
		r := tcp.NewReceiver(q.cfg.Aggregator, flow, worker.ID(), q.cfg.TCP)
		if q.cfg.Deadline > 0 {
			s.Deadline = deadline
		}
		s.OnComplete = func(sim.Time) { q.workerDone() }
		q.senders = append(q.senders, s)
		q.receivers = append(q.receivers, r)
		q.kickoff(s.Start)
	}
}

// kickoff runs fn now or after the configured jitter.
func (q *QueryRunner) kickoff(fn func()) {
	if q.cfg.StartJitter > 0 {
		jitter := time.Duration(q.engine.Rand().Int63n(int64(q.cfg.StartJitter)))
		q.engine.After(jitter, fn)
		return
	}
	fn()
}

func (q *QueryRunner) workerDone() {
	q.remaining--
	if q.remaining > 0 {
		return
	}
	round := QueryRound{Start: q.started, End: q.engine.Now()}
	var timeouts, retx uint64
	deadline := q.started.Add(q.cfg.Deadline)
	for _, s := range q.senders {
		st := s.Stats()
		timeouts += st.Timeouts
		retx += st.Retransmissions
		if q.cfg.Deadline > 0 && s.CompletionTime() > deadline {
			round.MissedDeadlines++
		}
	}
	round.Timeouts = timeouts - q.baseTimeouts
	round.Retransmissions = retx - q.baseRetx
	if q.cfg.Persistent {
		q.baseTimeouts, q.baseRetx = timeouts, retx
	}
	q.rounds = append(q.rounds, round)

	// Fresh-connection mode unregisters every round so host tables do
	// not grow; persistent mode unregisters only after the final round.
	if lastRound := q.round == q.cfg.Rounds-1; !q.cfg.Persistent || lastRound {
		for i, s := range q.senders {
			q.cfg.Workers[i].Unregister(s.Flow())
			q.cfg.Aggregator.Unregister(s.Flow())
		}
	}
	if !q.cfg.Persistent {
		q.baseTimeouts, q.baseRetx = 0, 0
	}

	q.round++
	if q.round >= q.cfg.Rounds {
		q.done = true
		if q.cfg.OnDone != nil {
			q.cfg.OnDone()
		}
		return
	}
	if q.cfg.Gap > 0 {
		q.engine.After(q.cfg.Gap, q.startRound)
	} else {
		q.startRound()
	}
}

// startRoundRelay starts a round at t0 in relay mode. The first call
// runs at setup; later calls are barrier tasks scheduled by pollRelay,
// so every shard's clock is below t0 and injections are safe.
func (q *QueryRunner) startRoundRelay(t0 sim.Time) {
	q.started = t0
	q.inFlight = true
	deadline := sim.TimeNever
	if q.cfg.Deadline > 0 {
		deadline = t0.Add(q.cfg.Deadline)
	}
	if q.round > 0 {
		// Persistent continuation: extend each worker's existing
		// transfer on its own shard.
		for i, s := range q.senders {
			s := s
			if q.cfg.Deadline > 0 {
				s.Deadline = deadline
			}
			q.kickRelay(t0, q.cfg.Workers[i], func(any) { s.Extend(q.cfg.BytesPerWorker) })
		}
		return
	}
	for i, worker := range q.cfg.Workers {
		flow := q.cfg.BaseFlow + netsim.FlowID(i)
		s := tcp.NewSender(worker, flow, q.cfg.Aggregator.ID(), q.cfg.BytesPerWorker, plusPacingSeed(q.engine, q.cfg.TCP))
		r := tcp.NewReceiver(q.cfg.Aggregator, flow, worker.ID(), q.cfg.TCP)
		if q.cfg.Deadline > 0 {
			s.Deadline = deadline
		}
		q.senders = append(q.senders, s)
		q.receivers = append(q.receivers, r)
		q.kickRelay(t0, worker, func(any) { s.Start() })
	}
}

// kickRelay injects one worker's round-start action into its shard at
// t0 plus the configured jitter. The injected event carries schedAt=t0,
// the instant the serial runner would have scheduled the same kick, so
// it sorts identically against the worker shard's own events.
func (q *QueryRunner) kickRelay(t0 sim.Time, w *netsim.Host, fn func(any)) {
	at := t0
	if q.cfg.StartJitter > 0 {
		at = t0.Add(time.Duration(q.engine.Rand().Int63n(int64(q.cfg.StartJitter))))
	}
	w.Engine().InjectArg(at, t0, fn, nil)
}

// pollRelay runs at every epoch barrier and closes the in-flight round
// once every sender has completed it. Completion times stamped on the
// worker shards are safe to read here: the barrier's join edges order
// them before the coordinator. A sender still showing the previous
// round's completion (its kick has not fired yet) keeps the round open.
func (q *QueryRunner) pollRelay() {
	if q.done || !q.inFlight {
		return
	}
	end := sim.TimeZero
	for _, s := range q.senders {
		if !s.Completed() || s.CompletionTime() < q.started {
			return
		}
		if ct := s.CompletionTime(); ct > end {
			end = ct
		}
	}
	q.inFlight = false
	q.finishRoundRelay(end)
}

// finishRoundRelay records the round ending at end and schedules the
// next one, mirroring workerDone's bookkeeping. Sender stats froze at
// each completion, so the deltas equal what the serial runner computed
// at the last acknowledgement.
func (q *QueryRunner) finishRoundRelay(end sim.Time) {
	round := QueryRound{Start: q.started, End: end}
	var timeouts, retx uint64
	deadline := q.started.Add(q.cfg.Deadline)
	for _, s := range q.senders {
		st := s.Stats()
		timeouts += st.Timeouts
		retx += st.Retransmissions
		if q.cfg.Deadline > 0 && s.CompletionTime() > deadline {
			round.MissedDeadlines++
		}
	}
	round.Timeouts = timeouts - q.baseTimeouts
	round.Retransmissions = retx - q.baseRetx
	q.baseTimeouts, q.baseRetx = timeouts, retx
	q.rounds = append(q.rounds, round)

	if q.round == q.cfg.Rounds-1 {
		for i, s := range q.senders {
			q.cfg.Workers[i].Unregister(s.Flow())
			q.cfg.Aggregator.Unregister(s.Flow())
		}
	}
	q.round++
	if q.round >= q.cfg.Rounds {
		q.done = true
		if q.cfg.OnDone != nil {
			q.cfg.OnDone()
		}
		return
	}
	q.se.ScheduleBarrier(end.Add(q.cfg.Gap), q.startRoundRelay)
}
