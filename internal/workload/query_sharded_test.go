package workload

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
	"dtdctcp/internal/topo"
)

// starOn builds the test star on a caller-owned engine, so a serial and
// a sharded run can be constructed from the same seed.
func starOn(t *testing.T, e *sim.Engine, n int) (*netsim.Network, *topo.Star) {
	t.Helper()
	const pkt = 1500
	nw := netsim.NewNetwork(e)
	st, err := topo.NewStar(nw, topo.StarConfig{
		Senders:    n,
		Access:     netsim.PortConfig{Rate: 10 * netsim.Gbps, Delay: 20 * time.Microsecond, Buffer: 4000 * pkt},
		Bottleneck: netsim.PortConfig{Rate: 1 * netsim.Gbps, Delay: 20 * time.Microsecond, Buffer: 400 * pkt, Policy: aqm.NewSingleThresholdPackets(40, pkt)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw, st
}

// TestQueriesShardedMatchesSerial pins the relay-mode contract from
// inside the package: StartQueriesSharded on a partitioned star must
// reproduce the serial StartQueries run bit for bit — same round
// boundaries, timeouts, retransmissions, and deadline misses.
func TestQueriesShardedMatchesSerial(t *testing.T) {
	const seed, workers = 11, 4
	qcfg := func(hosts []*netsim.Host, agg *netsim.Host) QueryConfig {
		return QueryConfig{
			Workers:        hosts,
			Aggregator:     agg,
			BytesPerWorker: 32 << 10,
			Rounds:         3,
			Gap:            time.Millisecond, // ≥ 2× the 20µs lookahead
			TCP:            tcp.DefaultConfig(tcp.DCTCP),
			Persistent:     true, // relay mode is persistent-only
			StartJitter:    20 * time.Microsecond,
			Deadline:       50 * time.Millisecond,
		}
	}

	e := sim.NewEngine(seed)
	_, st := starOn(t, e, workers)
	serial := StartQueries(e, qcfg(st.Senders, st.Receiver))
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !serial.Done() {
		t.Fatalf("serial run incomplete: %d rounds", len(serial.Rounds()))
	}

	se := sim.NewShardedEngine(seed, 2)
	nw, sst := starOn(t, se.Shard(0), workers)
	if err := nw.Partition(se, nw.DefaultAssign(2)); err != nil {
		t.Fatal(err)
	}
	sharded := StartQueriesSharded(se, qcfg(sst.Senders, sst.Receiver))
	if err := se.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !sharded.Done() {
		t.Fatalf("sharded run incomplete: %d rounds", len(sharded.Rounds()))
	}

	sr, shr := serial.Rounds(), sharded.Rounds()
	if len(sr) != len(shr) {
		t.Fatalf("rounds: serial %d, sharded %d", len(sr), len(shr))
	}
	for i := range sr {
		if sr[i] != shr[i] {
			t.Fatalf("round %d differs: serial %+v, sharded %+v", i, sr[i], shr[i])
		}
	}
	if serial.TotalTimeouts() != sharded.TotalTimeouts() {
		t.Fatalf("timeouts: serial %d, sharded %d", serial.TotalTimeouts(), sharded.TotalTimeouts())
	}
	if serial.TotalMissedDeadlines() != sharded.TotalMissedDeadlines() {
		t.Fatalf("deadline misses: serial %d, sharded %d",
			serial.TotalMissedDeadlines(), sharded.TotalMissedDeadlines())
	}
}

// TestQueriesShardedZeroRounds covers the degenerate relay setup: no
// rounds means the runner is done immediately and installs no hooks.
func TestQueriesShardedZeroRounds(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	nw, st := starOn(t, se.Shard(0), 1)
	if err := nw.Partition(se, nw.DefaultAssign(2)); err != nil {
		t.Fatal(err)
	}
	q := StartQueriesSharded(se, QueryConfig{
		Workers: st.Senders, Aggregator: st.Receiver, BytesPerWorker: 1000,
		TCP: tcp.DefaultConfig(tcp.Reno),
	})
	if !q.Done() {
		t.Fatal("zero-round sharded config should be done immediately")
	}
	if err := se.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
