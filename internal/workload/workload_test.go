package workload

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
	"dtdctcp/internal/topo"
)

// star builds n sender hosts → switch → one receiver via the shared
// topo helper, bottleneck at the switch→receiver port.
func star(t testing.TB, n int, bneckRate netsim.Rate, bufferPkts int, pol aqm.Policy) (
	*sim.Engine, []*netsim.Host, *netsim.Host, *netsim.Port) {
	t.Helper()
	e := sim.NewEngine(7)
	nw := netsim.NewNetwork(e)
	const pkt = 1500
	delay := 20 * time.Microsecond
	st, err := topo.NewStar(nw, topo.StarConfig{
		Senders:    n,
		Access:     netsim.PortConfig{Rate: 10 * bneckRate, Delay: delay, Buffer: 4000 * pkt},
		Bottleneck: netsim.PortConfig{Rate: bneckRate, Delay: delay, Buffer: bufferPkts * pkt, Policy: pol},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, st.Senders, st.Receiver, st.Bottleneck
}

func TestLongLivedFlowsMakeProgress(t *testing.T) {
	e, hosts, rcv, bneck := star(t, 5, 1*netsim.Gbps, 400, aqm.NewSingleThresholdPackets(40, 1500))
	w := StartLongLived(e, LongLivedConfig{
		Hosts:       hosts,
		Receiver:    rcv,
		TCP:         tcp.DefaultConfig(tcp.DCTCP),
		StartJitter: 100 * time.Microsecond,
	})
	if err := e.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(w.Senders) != 5 {
		t.Fatalf("Senders = %d", len(w.Senders))
	}
	total := w.TotalAcked()
	if total == 0 {
		t.Fatal("no progress")
	}
	// Utilization sanity: 200 ms at 1 Gbps ≈ 25 MB capacity.
	capacity := (1 * netsim.Gbps).BytesPerSecond() * 0.2
	if float64(total) < 0.7*capacity {
		t.Fatalf("acked %d bytes, want ≥ 70%% of %v", total, capacity)
	}
	if a := w.MeanAlpha(); a <= 0 || a > 1 {
		t.Fatalf("MeanAlpha = %v", a)
	}
	_ = w.Timeouts() // must not panic
	if bneck.Stats().Marked == 0 {
		t.Fatal("no marking at bottleneck")
	}
}

func TestLongLivedZeroJitterStartsImmediately(t *testing.T) {
	e, hosts, rcv, _ := star(t, 2, 1*netsim.Gbps, 400, nil)
	w := StartLongLived(e, LongLivedConfig{
		Hosts: hosts, Receiver: rcv, TCP: tcp.DefaultConfig(tcp.Reno),
	})
	if err := e.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.TotalAcked() == 0 {
		t.Fatal("no progress without jitter")
	}
}

func TestQueryRunnerCompletesAllRounds(t *testing.T) {
	e, hosts, rcv, _ := star(t, 4, 1*netsim.Gbps, 400, aqm.NewSingleThresholdPackets(40, 1500))
	done := false
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 64 << 10,
		Rounds:         5,
		Gap:            time.Millisecond,
		TCP:            tcp.DefaultConfig(tcp.DCTCP),
		OnDone:         func() { done = true },
	})
	if err := e.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Done() || !done {
		t.Fatalf("queries incomplete: %d rounds", len(q.Rounds()))
	}
	if len(q.Rounds()) != 5 {
		t.Fatalf("rounds = %d, want 5", len(q.Rounds()))
	}
	for i, r := range q.Rounds() {
		if r.End <= r.Start {
			t.Fatalf("round %d has non-positive duration", i)
		}
		// 4 workers × 64 KB at 1 Gbps needs ≥ 2.1 ms.
		if r.Completion() < 2*time.Millisecond {
			t.Fatalf("round %d completed impossibly fast: %v", i, r.Completion())
		}
	}
	if got := len(q.CompletionTimes()); got != 5 {
		t.Fatalf("CompletionTimes len = %d", got)
	}
	gps := q.GoodputsBps()
	for _, g := range gps {
		if g <= 0 || g > 1e9 {
			t.Fatalf("goodput %v out of range", g)
		}
	}
}

func TestQueryRunnerCleansUpEndpoints(t *testing.T) {
	e, hosts, rcv, _ := star(t, 2, 1*netsim.Gbps, 400, nil)
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 8 << 10,
		Rounds:         3,
		TCP:            tcp.DefaultConfig(tcp.Reno),
	})
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queries incomplete")
	}
	// All flows were unregistered: replaying one of the old flow IDs at
	// the aggregator must count as unknown.
	pkt := &netsim.Packet{Flow: q.cfg.BaseFlow, Dst: rcv.ID(), Size: 1500}
	hosts[0].Send(pkt)
	if err := e.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rcv.DroppedNoFlow() != 1 {
		t.Fatalf("DroppedNoFlow = %d, want 1 (endpoints leaked?)", rcv.DroppedNoFlow())
	}
}

func TestQueryRunnerSequentialRoundsDoNotOverlap(t *testing.T) {
	e, hosts, rcv, _ := star(t, 3, 1*netsim.Gbps, 400, nil)
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 16 << 10,
		Rounds:         4,
		Gap:            500 * time.Microsecond,
		TCP:            tcp.DefaultConfig(tcp.Reno),
	})
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	rounds := q.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("rounds = %d", len(rounds))
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Start < rounds[i-1].End {
			t.Fatalf("round %d started before round %d ended", i, i-1)
		}
		gap := (rounds[i].Start - rounds[i-1].End).Duration()
		if gap < 500*time.Microsecond {
			t.Fatalf("gap %v < configured 500µs", gap)
		}
	}
}

func TestQueryRunnerIncastCollapseVisibleWithTinyBuffer(t *testing.T) {
	// 24 workers bursting IW3 into a 32-packet buffer must drop and take
	// timeouts, stretching completion far beyond the ideal.
	e, hosts, rcv, bneck := star(t, 24, 1*netsim.Gbps, 32, nil)
	cfg := tcp.DefaultConfig(tcp.Reno)
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 64 << 10,
		Rounds:         2,
		Gap:            time.Millisecond,
		TCP:            cfg,
	})
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("incast rounds incomplete")
	}
	if bneck.Stats().DroppedOverflow == 0 {
		t.Fatal("expected overflow drops in incast")
	}
	if q.TotalTimeouts() == 0 {
		t.Fatal("expected RTO timeouts in incast")
	}
	// Ideal time: 24·64 KB at 1 Gbps ≈ 12.6 ms; a 200 ms RTO dominates.
	if q.Rounds()[0].Completion() < 100*time.Millisecond {
		t.Fatalf("completion %v does not show collapse", q.Rounds()[0].Completion())
	}
}

func TestQueryRunnerZeroRounds(t *testing.T) {
	e, hosts, rcv, _ := star(t, 1, 1*netsim.Gbps, 100, nil)
	q := StartQueries(e, QueryConfig{
		Workers: hosts, Aggregator: rcv, BytesPerWorker: 1000,
		TCP: tcp.DefaultConfig(tcp.Reno),
	})
	if !q.Done() {
		t.Fatal("zero-round config should be done immediately")
	}
	if err := e.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRunnerPersistentWithDeadlineAndJitter(t *testing.T) {
	e, hosts, rcv, _ := star(t, 3, 1*netsim.Gbps, 400, aqm.NewSingleThresholdPackets(40, 1500))
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 32 << 10,
		Rounds:         4,
		Gap:            200 * time.Microsecond,
		TCP:            tcp.DefaultConfig(tcp.D2TCP),
		Persistent:     true,
		Deadline:       50 * time.Millisecond, // generous: no misses
		StartJitter:    20 * time.Microsecond,
	})
	if err := e.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatalf("incomplete: %d rounds", len(q.Rounds()))
	}
	if got := q.TotalMissedDeadlines(); got != 0 {
		t.Fatalf("missed %d deadlines with a 50 ms budget", got)
	}
	// Persistent mode consumes exactly one flow-ID set: replaying the
	// base flow at the aggregator must be unknown after the final round.
	pkt := &netsim.Packet{Flow: q.cfg.BaseFlow, Dst: rcv.ID(), Size: 1500}
	hosts[0].Send(pkt)
	if err := e.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rcv.DroppedNoFlow() != 1 {
		t.Fatal("persistent endpoints not unregistered after the final round")
	}
}

func TestQueryRunnerImpossibleDeadlineCountsAllMisses(t *testing.T) {
	e, hosts, rcv, _ := star(t, 2, 1*netsim.Gbps, 400, nil)
	q := StartQueries(e, QueryConfig{
		Workers:        hosts,
		Aggregator:     rcv,
		BytesPerWorker: 16 << 10,
		Rounds:         3,
		TCP:            tcp.DefaultConfig(tcp.DCTCP),
		Deadline:       time.Nanosecond,
	})
	if err := e.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("incomplete")
	}
	if got := q.TotalMissedDeadlines(); got != 3*2 {
		t.Fatalf("missed %d, want every one of 6", got)
	}
	for _, r := range q.Rounds() {
		if r.MissedDeadlines != 2 {
			t.Fatalf("round misses = %d, want 2", r.MissedDeadlines)
		}
	}
}
