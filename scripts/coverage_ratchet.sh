#!/bin/sh
# Per-package coverage ratchet: every package listed in coverage_floor.txt
# must meet its committed floor. Prints one line per ratcheted package and
# exits non-zero when any package falls below its floor or a listed
# package stops producing a coverage line (renamed/deleted packages must
# update the floor file).
set -eu
cd "$(dirname "$0")/.."
out="$(go test -cover ./... 2>&1)" || { printf '%s\n' "$out"; exit 1; }
printf '%s\n' "$out" | awk -v floors="coverage_floor.txt" '
BEGIN {
    while ((getline line < floors) > 0) {
        if (line ~ /^[ \t]*(#|$)/) continue
        split(line, f, /[ \t]+/)
        floor[f[1]] = f[2] + 0
    }
    close(floors)
}
$1 == "ok" && /coverage:/ {
    pkg = $2
    pct = -1
    for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1) + 0
    if (pkg in floor) {
        seen[pkg] = 1
        if (pct < floor[pkg]) {
            printf "FAIL %s: coverage %.1f%% below floor %d%%\n", pkg, pct, floor[pkg]
            bad = 1
        } else {
            printf "ok   %s: %.1f%% (floor %d%%)\n", pkg, pct, floor[pkg]
        }
    }
}
END {
    for (p in floor) if (!(p in seen)) {
        printf "FAIL %s: listed in coverage_floor.txt but produced no coverage line\n", p
        bad = 1
    }
    exit bad
}'
